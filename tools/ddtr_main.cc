// ddtr — the command-line front end of the exploration framework, the
// counterpart of the paper's "fully automated tools" (§3.2/§3.3 tool
// support, Figure 2). Subcommands:
//
//   ddtr apps                             list the registered workloads
//   ddtr presets                          list the synthetic network presets
//   ddtr tracegen  --preset P [...]       generate a trace file
//   ddtr traceparse FILE                  extract network parameters
//   ddtr explore   --app A [...]          run the 3-step methodology
//   ddtr pareto    --log FILE [...]       post-process a result log
//
// `explore --app` accepts ANY workload in api::registry() — the four paper
// studies are just the built-in registrations. Every exploration writes a
// ResultLog that `pareto` can re-process later (the paper's "log files ->
// Perl post-processing" flow).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/ddtr.h"
#include "core/report.h"
#include "core/result_log.h"
#include "nettrace/generator.h"
#include "nettrace/parser.h"
#include "nettrace/presets.h"
#include "support/table.h"

namespace {

using namespace ddtr;

// Usage text is generated from the single sources of truth — the workload
// registry and energy::kMetricNames — so it cannot drift from the code.
std::string app_list() {
  std::ostringstream os;
  bool first = true;
  for (const std::string& name : api::registry().names()) {
    if (!first) os << '|';
    os << name;
    first = false;
  }
  return os.str();
}

std::string metric_list() {
  std::ostringstream os;
  bool first = true;
  for (const char* name : energy::kMetricNames) {
    if (!first) os << ' ';
    os << name;
    first = false;
  }
  return os.str();
}

int usage() {
  std::cerr <<
      "usage:\n"
      "  ddtr apps\n"
      "  ddtr presets\n"
      "  ddtr tracegen --preset NAME [--packets N] [--seed-offset K] "
      "[--out FILE]\n"
      "  ddtr traceparse FILE\n"
      "  ddtr explore --app " << app_list() << " [--scale S] "
      "[--jobs N] [--greedy] [--progress]\n"
      "               [--survivor-cap F] [--cache-dir DIR] [--log FILE] "
      "[--csv PREFIX]\n"
      "    --jobs N: concurrent simulation lanes (default 1; 0 = one per\n"
      "              hardware thread); output is identical at any N\n"
      "    --greedy: per-slot greedy step 1 (fewer simulations)\n"
      "    --progress: per-step simulation progress on stderr\n"
      "    --cache-dir DIR: persist the simulation cache across runs in\n"
      "              DIR; a warm rerun executes 0 simulations and emits\n"
      "              an identical report\n"
      "  ddtr pareto --log FILE [--app NAME] [--x METRIC] [--y METRIC]\n"
      "metrics: " << metric_list() << '\n';
  return 2;
}

// Minimal flag parsing: `--name value` pairs, valueless boolean flags
// (`--greedy`), and positionals. A `--flag` followed by another flag — or
// by nothing — is recorded with an empty value, so commands can tell
// "boolean flag given" apart from "value missing" and error on the latter
// instead of silently swallowing the flag as a positional.
struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;

  bool has(const std::string& name) const {
    for (const auto& [k, v] : flags) {
      if (k == name) return true;
    }
    return false;
  }

  // A flag that takes a value: returns it when given, std::nullopt when
  // absent, and throws when the flag was given without a value.
  std::optional<std::string> valued(const std::string& name) const {
    for (const auto& [k, v] : flags) {
      if (k != name) continue;
      if (v.empty()) {
        throw std::runtime_error("flag --" + name + " requires a value");
      }
      return v;
    }
    return std::nullopt;
  }

  // A flag that must be present with a value.
  std::string require(const std::string& name) const {
    auto v = valued(name);
    if (!v) {
      throw std::runtime_error("missing required flag --" + name);
    }
    return *v;
  }
};

// Validated numeric flag values. std::stoul/std::stod alone would let a
// malformed value escape as an uncaught std::invalid_argument (an ugly
// crash instead of a usage error) — and stoul would happily wrap "-1" to
// 2^64-1 or accept trailing garbage ("10x"). Every numeric flag goes
// through one of these; the thrown runtime_error surfaces as a clean
// "error: ..." message.
std::size_t parse_count_flag(const std::string& flag,
                             const std::string& value) {
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    throw std::runtime_error("flag --" + flag +
                             " expects a non-negative integer, got '" +
                             value + "'");
  }
  try {
    return std::stoul(value);
  } catch (const std::out_of_range&) {
    throw std::runtime_error("flag --" + flag + " value '" + value +
                             "' is out of range");
  }
}

double parse_double_flag(const std::string& flag, const std::string& value) {
  std::size_t consumed = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &consumed);
  } catch (const std::invalid_argument&) {
    throw std::runtime_error("flag --" + flag + " expects a number, got '" +
                             value + "'");
  } catch (const std::out_of_range&) {
    throw std::runtime_error("flag --" + flag + " value '" + value +
                             "' is out of range");
  }
  if (consumed != value.size()) {
    throw std::runtime_error("flag --" + flag + " expects a number, got '" +
                             value + "'");
  }
  return parsed;
}

Args parse_args(int argc, char** argv, int from) {
  Args args;
  for (int i = from; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string name = arg.substr(2);
      const bool has_value =
          i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0;
      args.flags.emplace_back(name, has_value ? argv[++i] : "");
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

int cmd_apps() {
  support::TextTable table({"name", "description"});
  for (const std::string& name : api::registry().names()) {
    table.add_row({name, api::registry().info(name).description});
  }
  table.print(std::cout);
  std::cout << "\nexplore any of them: ddtr explore --app NAME\n";
  return 0;
}

int cmd_presets() {
  support::TextTable table({"name", "nodes", "rate_pps", "burstiness",
                            "mtu", "http", "description"});
  for (const net::NetworkPreset& p : net::all_network_presets()) {
    table.add_row({p.name, std::to_string(p.node_count),
                   support::format_double(p.mean_rate_pps, 0),
                   support::format_double(p.burstiness, 1),
                   std::to_string(p.mtu),
                   support::format_percent(p.http_fraction, 0),
                   p.description});
  }
  table.print(std::cout);
  return 0;
}

int cmd_tracegen(const Args& args) {
  const std::string preset_name = args.require("preset");
  net::TraceGenerator::Options options;
  if (const auto packets = args.valued("packets")) {
    options.packet_count = parse_count_flag("packets", *packets);
  }
  if (const auto offset = args.valued("seed-offset")) {
    options.seed_offset = parse_count_flag("seed-offset", *offset);
  }
  const net::Trace trace =
      net::TraceGenerator::generate(net::network_preset(preset_name),
                                    options);
  if (const auto out = args.valued("out")) {
    std::ofstream os(*out);
    trace.save(os);
    std::cout << "wrote " << trace.size() << " packets to " << *out << '\n';
  } else {
    trace.save(std::cout);
  }
  return 0;
}

int cmd_traceparse(const Args& args) {
  if (args.positional.empty()) return usage();
  std::ifstream is(args.positional[0]);
  if (!is) {
    std::cerr << "cannot open " << args.positional[0] << '\n';
    return 1;
  }
  const net::Trace trace = net::Trace::load(is);
  const net::NetworkParams params = net::TraceParser::extract(trace);
  support::TextTable table({"parameter", "value"});
  table.add_row({"trace", params.trace_name});
  table.add_row({"packets", std::to_string(params.packet_count)});
  table.add_row({"duration_s", support::format_double(params.duration_s, 3)});
  table.add_row({"nodes", std::to_string(params.node_count)});
  table.add_row({"flows", std::to_string(params.flow_count)});
  table.add_row(
      {"throughput_bps", support::format_double(params.throughput_bps, 0)});
  table.add_row({"mean_packet_B",
                 support::format_double(params.mean_packet_bytes, 1)});
  table.add_row({"max_packet_B", std::to_string(params.max_packet_bytes)});
  table.add_row({"http_fraction",
                 support::format_percent(params.http_fraction)});
  table.add_row({"udp_fraction",
                 support::format_percent(params.udp_fraction)});
  table.print(std::cout);
  return 0;
}

int cmd_explore(const Args& args) {
  const std::string app = args.require("app");
  if (!api::registry().contains(app)) {
    std::cerr << "error: unknown app '" << app << "' (registered: "
              << app_list() << ")\n";
    return 2;
  }
  // Every flag is validated up front: a bad --jobs or a missing --log
  // value must fail before traces are generated and the exploration runs,
  // not after the work is done.
  double scale = 0.25;
  if (const auto s = args.valued("scale")) {
    scale = parse_double_flag("scale", *s);
  }
  const auto log_path = args.valued("log");
  const auto csv_prefix = args.valued("csv");
  const auto jobs = args.valued("jobs");
  const std::size_t job_count =
      jobs ? parse_count_flag("jobs", *jobs) : std::size_t{1};
  const auto survivor_cap = args.valued("survivor-cap");
  const double survivor_cap_fraction =
      survivor_cap ? parse_double_flag("survivor-cap", *survivor_cap) : 0.0;
  const auto cache_dir = args.valued("cache-dir");

  api::Exploration session(api::registry().make_study(
      app, core::CaseStudyOptions{}.scaled(scale)));
  if (jobs) session.jobs(job_count);
  if (survivor_cap) session.survivor_cap(survivor_cap_fraction);
  if (cache_dir) session.cache_dir(*cache_dir);
  if (args.has("greedy")) {
    session.step1_policy(core::Step1Policy::kGreedyPerSlot);
  }
  if (args.has("progress")) {
    session.on_progress([](const core::StepProgress& p) {
      // One line per ~10% (and at the edges) to keep stderr readable.
      const std::size_t stride = std::max<std::size_t>(1, p.total / 10);
      if (p.done == 0 || p.done == p.total || p.done % stride == 0) {
        std::cerr << "[step " << p.step << "] " << p.done << '/' << p.total
                  << " simulations\n";
      }
    });
  }

  const core::ExplorationReport& report = session.run();

  std::cout << "application: " << report.app_name << '\n'
            << "configurations: " << report.scenario_count << '\n'
            << "exhaustive simulations: " << report.exhaustive_simulations
            << '\n'
            << "reduced simulations:   " << report.reduced_simulations()
            << '\n'
            << "executed simulations:  " << report.executed_simulations()
            << " (cache hit rate "
            << support::format_percent(report.cache_hit_rate()) << ")\n";
  if (cache_dir) {
    std::cout << "persistent cache:      loaded " << report.persistent_loaded
              << ", stored " << report.persistent_stored << " records in "
              << *cache_dir << '\n';
  }
  std::cout << "survivors after step 1: " << report.survivors.size() << '\n'
            << "Pareto-optimal combinations:\n";
  for (const auto& r : report.pareto_records()) {
    std::cout << "  " << r.combo.label() << "  energy "
              << support::format_double(r.metrics.energy_mj, 4)
              << " mJ, time "
              << support::format_double(r.metrics.time_s * 1e3, 3)
              << " ms, accesses " << support::format_count(r.metrics.accesses)
              << ", footprint "
              << support::format_bytes(r.metrics.footprint_bytes) << '\n';
  }
  std::cout << "\nper-metric best combinations (step 2 logs):\n";
  core::print_best_by_metric(std::cout, report.step2_records);

  if (log_path) {
    std::ofstream os(*log_path);
    os << report.serialized_records();
    std::cout << "\nwrote "
              << report.step1_records.size() + report.step2_records.size()
              << " records to " << *log_path << '\n';
  }
  if (csv_prefix) {
    {
      std::ofstream os(*csv_prefix + "_records.csv");
      core::write_records_csv(os, report.step2_records);
    }
    {
      std::ofstream os(*csv_prefix + "_time_energy.csv");
      core::write_pareto_csv(os, report.step2_records, 1, 0);
    }
    {
      std::ofstream os(*csv_prefix + "_accesses_footprint.csv");
      core::write_pareto_csv(os, report.step2_records, 2, 3);
    }
    std::cout << "wrote " << *csv_prefix << "_{records,time_energy,"
              << "accesses_footprint}.csv\n";
  }
  return 0;
}

std::optional<std::size_t> metric_index(const std::string& name) {
  for (std::size_t m = 0; m < energy::kMetricCount; ++m) {
    if (name == energy::kMetricNames[m]) return m;
  }
  return std::nullopt;
}

int cmd_pareto(const Args& args) {
  const std::string log_path = args.require("log");
  std::ifstream is(log_path);
  if (!is) {
    std::cerr << "cannot open " << log_path << '\n';
    return 1;
  }
  core::ResultLog log = core::ResultLog::load(is);
  std::vector<core::SimulationRecord> records = log.records();
  if (const auto app = args.valued("app")) records = log.for_app(*app);

  std::size_t mx = 1, my = 0;  // default: time vs energy
  if (const auto x = args.valued("x")) {
    const auto idx = metric_index(*x);
    if (!idx) return usage();
    mx = *idx;
  }
  if (const auto y = args.valued("y")) {
    const auto idx = metric_index(*y);
    if (!idx) return usage();
    my = *idx;
  }

  std::vector<energy::Metrics> points;
  for (const auto& r : records) points.push_back(r.metrics);
  const auto front = core::pareto_front_2d(points, mx, my);
  support::TextTable table({"combination", "network", "config",
                            energy::kMetricNames[mx],
                            energy::kMetricNames[my]});
  for (std::size_t idx : front) {
    const auto v = points[idx].as_array();
    table.add_row({records[idx].combo.label(), records[idx].network,
                   records[idx].config, support::format_double(v[mx], 6),
                   support::format_double(v[my], 6)});
  }
  table.print(std::cout);
  std::cout << front.size() << " Pareto-optimal points out of "
            << records.size() << " records\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv, 2);
  try {
    if (command == "apps") return cmd_apps();
    if (command == "presets") return cmd_presets();
    if (command == "tracegen") return cmd_tracegen(args);
    if (command == "traceparse") return cmd_traceparse(args);
    if (command == "explore") return cmd_explore(args);
    if (command == "pareto") return cmd_pareto(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
