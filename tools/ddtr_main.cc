// ddtr — the command-line front end of the exploration framework, the
// counterpart of the paper's "fully automated tools" (§3.2/§3.3 tool
// support, Figure 2). Subcommands:
//
//   ddtr apps                             list the registered workloads
//   ddtr presets                          list the synthetic network presets
//   ddtr tracegen  --preset P [...]       generate a trace file
//   ddtr traceparse FILE                  extract network parameters
//   ddtr explore   --app A [...]          run the 3-step methodology
//   ddtr pareto    --log FILE [...]       post-process a result log
//   ddtr lint      [PATH ...]             project-invariant static analysis
//   ddtr cache     OP DIR                 inspect/maintain a cache dir
//   ddtr serve     --socket PATH [...]    long-lived exploration daemon
//   ddtr submit    --socket PATH --app A  submit a study to the daemon
//   ddtr status    --socket PATH          the daemon's job table
//   ddtr stats     --socket PATH          live daemon introspection
//   ddtr results   --socket PATH --job I  re-fetch a job's last result
//   ddtr shutdown  --socket PATH          drain the daemon and exit
//   ddtr tracecheck FILE                  validate a --trace output file
//
// `explore --app` accepts ANY workload in api::registry() — the four paper
// studies are just the built-in registrations. Every exploration writes a
// ResultLog that `pareto` can re-process later (the paper's "log files ->
// Perl post-processing" flow).
//
// Distributed exploration (see src/dist/): `explore --shard I/N` runs one
// worker of an N-way sharded exploration (simulates only its stable
// subset, stores into a private cache segment — SIGTERM checkpoints and
// exits); `explore --workers N` is the single-machine coordinator: it
// fork/execs itself as N shard workers, merges their segments, then
// replays the merged cache — zero executed simulations, byte-identical
// report. `ddtr cache stats|verify|clear|merge|gc DIR` maintains the
// shared cache directory those flows meet in.
//
// Serving (see src/serve/): `ddtr serve` keeps the persistent cache, the
// generated traces and the simulation pool warm in one long-lived daemon;
// `submit` sends a workload over the unix socket and streams progress
// back — a resubmission of the same study replays entirely from the warm
// cache (zero executed simulations, byte-identical records). `--every S`
// registers the study with the daemon's scheduler for periodic
// re-exploration.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "api/ddtr.h"
#include "core/persistent_cache.h"
#include "core/report.h"
#include "core/result_log.h"
#include "dist/cache_inspect.h"
#include "dist/segment_merger.h"
#include "dist/worker_pool.h"
#include "lint.h"
#include "nettrace/generator.h"
#include "nettrace/parser.h"
#include "nettrace/presets.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/server.h"
#include "support/table.h"

namespace {

using namespace ddtr;

// Usage text is generated from the single sources of truth — the workload
// registry and energy::kMetricNames — so it cannot drift from the code.
std::string app_list() {
  std::ostringstream os;
  bool first = true;
  for (const std::string& name : api::registry().names()) {
    if (!first) os << '|';
    os << name;
    first = false;
  }
  return os.str();
}

std::string metric_list() {
  std::ostringstream os;
  bool first = true;
  for (const char* name : energy::kMetricNames) {
    if (!first) os << ' ';
    os << name;
    first = false;
  }
  return os.str();
}

int usage() {
  std::cerr <<
      "usage:\n"
      "  ddtr apps\n"
      "  ddtr ddts\n"
      "  ddtr presets\n"
      "  ddtr tracegen --preset NAME [--packets N] [--seed-offset K] "
      "[--out FILE]\n"
      "  ddtr traceparse FILE\n"
      "  ddtr explore --app " << app_list() << " [--scale S] "
      "[--jobs N] [--greedy] [--progress]\n"
      "               [--survivor-cap F] [--cache-dir DIR] [--log FILE] "
      "[--csv PREFIX]\n"
      "               [--shard I/N | --workers N] [--step1-sharded] "
      "[--barrier-timeout S]\n"
      "               [--trace FILE]\n"
      "    --jobs N: concurrent simulation lanes (default 1; 0 = one per\n"
      "              hardware thread); output is identical at any N\n"
      "    --greedy: per-slot greedy step 1 (fewer simulations)\n"
      "    --progress: per-step simulation progress on stderr\n"
      "    --cache-dir DIR: persist the simulation cache across runs in\n"
      "              DIR; a warm rerun executes 0 simulations and emits\n"
      "              an identical report\n"
      "    --shard I/N: run as worker shard I of N (requires --cache-dir):\n"
      "              simulate only this shard's units and store them into\n"
      "              a private cache segment; a later unsharded run over\n"
      "              the same --cache-dir replays all shards' work\n"
      "    --workers N: single-machine coordinator (requires --cache-dir):\n"
      "              spawn N shard workers, merge their segments, then\n"
      "              replay the merged cache (0 executed simulations)\n"
      "    --step1-sharded: split step 1 across the fleet too; workers\n"
      "              checkpoint their step-1 units, publish\n"
      "              step1.<fingerprint>.shard<I>of<N>.done markers, and\n"
      "              rendezvous on them before selecting survivors (needs\n"
      "              all N workers running concurrently)\n"
      "    --barrier-timeout S: give up the step-1 rendezvous after S\n"
      "              seconds with a clean error (default 600)\n"
      "    --trace FILE: write a Chrome trace_event JSON span timeline of\n"
      "              the run (open in Perfetto / chrome://tracing); purely\n"
      "              observational — reports are byte-identical either way\n"
      "  ddtr lint [DIR|FILE ...] [--repo-root DIR] [--update-accounting]\n"
      "            [--fix [--dry-run]] [--diff REF] [--compile-commands F]\n"
      "    run the project-invariant static-analysis pass (decoder\n"
      "    safety, fsync-paired renames, pool-only DDT allocation,\n"
      "    cache-key determinism, accounting-version coupling, header\n"
      "    hygiene) plus the whole-program passes (layering vs\n"
      "    tools/lint/layers.lock, include cycles/IWYU, include order,\n"
      "    lock-order discipline, cv predicates) over the given paths\n"
      "    (default: src tests tools bench under --repo-root, \".\");\n"
      "    suppress one finding with // ddtr-lint: allow(<rule>) on the\n"
      "    same or preceding line\n"
      "    --fix: repair the mechanical families in place (missing\n"
      "              #pragma once, unused includes, include order);\n"
      "              --dry-run previews the rewrites as unified diffs\n"
      "    --diff REF: report only findings in files changed vs the git\n"
      "              ref — fast PR feedback (full tree stays in ctest)\n"
      "  ddtr pareto --log FILE [--app NAME] [--x METRIC] [--y METRIC]\n"
      "  ddtr cache stats|verify|clear|merge DIR\n"
      "  ddtr cache gc DIR --max-age-s S\n"
      "    gc: prune segment files and barrier markers older than S\n"
      "        seconds (the main cache file is never touched)\n"
      "  ddtr serve --socket PATH [--cache-dir DIR] [--jobs N]\n"
      "             [--progress-every S] [--trace FILE]\n"
      "    long-lived daemon: loads the cache once, accepts submissions\n"
      "    on the unix socket, re-explores scheduled jobs, drains and\n"
      "    flushes on SIGTERM/SIGINT\n"
      "    --progress-every S: stream at most one progress tick per S\n"
      "              seconds per running job (default 0.25; endpoints\n"
      "              always sent); advertised to clients in the handshake\n"
      "    --trace FILE: write the daemon's span timeline (connections,\n"
      "              jobs, exploration internals) on clean shutdown\n"
      "  ddtr submit --socket PATH --app " << app_list() << " [--scale S]\n"
      "              [--packets N] [--seed-offset K] [--greedy]\n"
      "              [--survivor-cap F] [--jobs N] [--every S]\n"
      "              [--x METRIC] [--y METRIC] [--log FILE] [--progress]\n"
      "    --every S: daemon re-explores this study every S seconds\n"
      "    --log FILE: write the run's result records to FILE\n"
      "  ddtr status --socket PATH\n"
      "  ddtr stats --socket PATH [--metrics]\n"
      "    live daemon introspection: uptime, since-boot cache hit/miss\n"
      "    counters, scheduler re-runs, and the job table with\n"
      "    submit/start/finish timestamps; --metrics appends the daemon's\n"
      "    full metrics-registry dump\n"
      "  ddtr results --socket PATH --job ID [--log FILE]\n"
      "  ddtr shutdown --socket PATH\n"
      "  ddtr tracecheck FILE\n"
      "    validate a --trace file: well-formed Chrome trace_event JSON\n"
      "    with balanced begin/end spans per thread (exit 1 otherwise)\n"
      "metrics: " << metric_list() << '\n';
  return 2;
}

// Minimal flag parsing: `--name value` pairs, valueless boolean flags
// (`--greedy`), and positionals. A `--flag` followed by another flag — or
// by nothing — is recorded with an empty value, so commands can tell
// "boolean flag given" apart from "value missing" and error on the latter
// instead of silently swallowing the flag as a positional.
struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;

  bool has(const std::string& name) const {
    for (const auto& [k, v] : flags) {
      if (k == name) return true;
    }
    return false;
  }

  // A flag that takes a value: returns it when given, std::nullopt when
  // absent, and throws when the flag was given without a value.
  std::optional<std::string> valued(const std::string& name) const {
    for (const auto& [k, v] : flags) {
      if (k != name) continue;
      if (v.empty()) {
        throw std::runtime_error("flag --" + name + " requires a value");
      }
      return v;
    }
    return std::nullopt;
  }

  // A flag that must be present with a value.
  std::string require(const std::string& name) const {
    auto v = valued(name);
    if (!v) {
      throw std::runtime_error("missing required flag --" + name);
    }
    return *v;
  }
};

// Validated numeric flag values. std::stoul/std::stod alone would let a
// malformed value escape as an uncaught std::invalid_argument (an ugly
// crash instead of a usage error) — and stoul would happily wrap "-1" to
// 2^64-1 or accept trailing garbage ("10x"). Every numeric flag goes
// through one of these; the thrown runtime_error surfaces as a clean
// "error: ..." message.
std::size_t parse_count_flag(const std::string& flag,
                             const std::string& value) {
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    throw std::runtime_error("flag --" + flag +
                             " expects a non-negative integer, got '" +
                             value + "'");
  }
  try {
    return std::stoul(value);
  } catch (const std::out_of_range&) {
    throw std::runtime_error("flag --" + flag + " value '" + value +
                             "' is out of range");
  }
}

double parse_double_flag(const std::string& flag, const std::string& value) {
  std::size_t consumed = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &consumed);
  } catch (const std::invalid_argument&) {
    throw std::runtime_error("flag --" + flag + " expects a number, got '" +
                             value + "'");
  } catch (const std::out_of_range&) {
    throw std::runtime_error("flag --" + flag + " value '" + value +
                             "' is out of range");
  }
  if (consumed != value.size()) {
    throw std::runtime_error("flag --" + flag + " expects a number, got '" +
                             value + "'");
  }
  return parsed;
}

// "--shard I/N" — worker shard I of N.
std::pair<std::size_t, std::size_t> parse_shard_flag(
    const std::string& value) {
  const std::size_t slash = value.find('/');
  if (slash == std::string::npos || slash == 0 ||
      slash + 1 == value.size()) {
    throw std::runtime_error("flag --shard expects I/N (e.g. 0/4), got '" +
                             value + "'");
  }
  const std::size_t index =
      parse_count_flag("shard", value.substr(0, slash));
  const std::size_t count =
      parse_count_flag("shard", value.substr(slash + 1));
  if (count == 0) {
    throw std::runtime_error("flag --shard count N must be >= 1");
  }
  if (index >= count) {
    throw std::runtime_error("flag --shard index must be < N in I/N, got '" +
                             value + "'");
  }
  return {index, count};
}

// Cooperative cancellation for shard workers: SIGTERM/SIGINT raise this
// flag, the engine stops starting simulations and checkpoints whatever it
// executed into the worker's cache segment — a killed worker loses
// wall-clock, never work. A signal handler may only touch lock-free
// atomics, so the flag is a constant-initialized file-scope atomic (no
// lazy init a handler could race or re-enter); the shared_ptr the engine
// polls aliases it without owning it.
std::atomic<bool> g_cancel{false};

void on_terminate_signal(int) { g_cancel.store(true); }

std::shared_ptr<std::atomic<bool>> cancel_token() {
  return {&g_cancel, [](std::atomic<bool>*) {}};
}

Args parse_args(int argc, char** argv, int from) {
  Args args;
  for (int i = from; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string name = arg.substr(2);
      const bool has_value =
          i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0;
      args.flags.emplace_back(name, has_value ? argv[++i] : "");
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

int cmd_apps() {
  support::TextTable table({"name", "description"});
  for (const std::string& name : api::registry().names()) {
    table.add_row({name, api::registry().info(name).description});
  }
  table.print(std::cout);
  std::cout << "\nexplore any of them: ddtr explore --app NAME\n";
  return 0;
}

// ddtr ddts — the DDT library as the explorer sees it, generated from the
// same kind table that drives name parsing (ddt/kinds.cc).
int cmd_ddts() {
  support::TextTable table({"name", "description"});
  for (ddt::DdtKind kind : ddt::kAllDdtKinds) {
    table.add_row({std::string(ddt::to_string(kind)),
                   std::string(ddt::describe(kind))});
  }
  table.print(std::cout);
  std::cout << '\n'
            << ddt::kAllDdtKinds.size()
            << " kinds; HASH is offered on keyed slots only "
            << "(accounting v" << ddt::kDdtAccountingVersion << ")\n";
  return 0;
}

int cmd_presets() {
  support::TextTable table({"name", "nodes", "rate_pps", "burstiness",
                            "mtu", "http", "description"});
  for (const net::NetworkPreset& p : net::all_network_presets()) {
    table.add_row({p.name, std::to_string(p.node_count),
                   support::format_double(p.mean_rate_pps, 0),
                   support::format_double(p.burstiness, 1),
                   std::to_string(p.mtu),
                   support::format_percent(p.http_fraction, 0),
                   p.description});
  }
  table.print(std::cout);
  return 0;
}

int cmd_tracegen(const Args& args) {
  const std::string preset_name = args.require("preset");
  net::TraceGenerator::Options options;
  if (const auto packets = args.valued("packets")) {
    options.packet_count = parse_count_flag("packets", *packets);
  }
  if (const auto offset = args.valued("seed-offset")) {
    options.seed_offset = parse_count_flag("seed-offset", *offset);
  }
  const net::Trace trace =
      net::TraceGenerator::generate(net::network_preset(preset_name),
                                    options);
  if (const auto out = args.valued("out")) {
    std::ofstream os(*out);
    trace.save(os);
    std::cout << "wrote " << trace.size() << " packets to " << *out << '\n';
  } else {
    trace.save(std::cout);
  }
  return 0;
}

int cmd_traceparse(const Args& args) {
  if (args.positional.empty()) return usage();
  std::ifstream is(args.positional[0]);
  if (!is) {
    std::cerr << "cannot open " << args.positional[0] << '\n';
    return 1;
  }
  const net::Trace trace = net::Trace::load(is);
  const net::NetworkParams params = net::TraceParser::extract(trace);
  support::TextTable table({"parameter", "value"});
  table.add_row({"trace", params.trace_name});
  table.add_row({"packets", std::to_string(params.packet_count)});
  table.add_row({"duration_s", support::format_double(params.duration_s, 3)});
  table.add_row({"nodes", std::to_string(params.node_count)});
  table.add_row({"flows", std::to_string(params.flow_count)});
  table.add_row(
      {"throughput_bps", support::format_double(params.throughput_bps, 0)});
  table.add_row({"mean_packet_B",
                 support::format_double(params.mean_packet_bytes, 1)});
  table.add_row({"max_packet_B", std::to_string(params.max_packet_bytes)});
  table.add_row({"http_fraction",
                 support::format_percent(params.http_fraction)});
  table.add_row({"udp_fraction",
                 support::format_percent(params.udp_fraction)});
  table.print(std::cout);
  return 0;
}

int cmd_explore(const Args& args, const char* argv0) {
  const std::string app = args.require("app");
  if (!api::registry().contains(app)) {
    std::cerr << "error: unknown app '" << app << "' (registered: "
              << app_list() << ")\n";
    return 2;
  }
  // Every flag is validated up front: a bad --jobs or a missing --log
  // value must fail before traces are generated and the exploration runs,
  // not after the work is done.
  double scale = 0.25;
  if (const auto s = args.valued("scale")) {
    scale = parse_double_flag("scale", *s);
  }
  const auto log_path = args.valued("log");
  const auto csv_prefix = args.valued("csv");
  const auto jobs = args.valued("jobs");
  const std::size_t job_count =
      jobs ? parse_count_flag("jobs", *jobs) : std::size_t{1};
  const auto survivor_cap = args.valued("survivor-cap");
  const double survivor_cap_fraction =
      survivor_cap ? parse_double_flag("survivor-cap", *survivor_cap) : 0.0;
  const auto cache_dir = args.valued("cache-dir");
  const auto trace_path = args.valued("trace");
  const auto shard_flag = args.valued("shard");
  const auto workers_flag = args.valued("workers");
  std::pair<std::size_t, std::size_t> shard{0, 1};
  if (shard_flag) shard = parse_shard_flag(*shard_flag);
  const std::size_t worker_count =
      workers_flag ? parse_count_flag("workers", *workers_flag)
                   : std::size_t{1};
  const bool step1_sharded = args.has("step1-sharded");
  const auto barrier_timeout_flag = args.valued("barrier-timeout");
  double barrier_timeout_s = 600.0;
  if (barrier_timeout_flag) {
    barrier_timeout_s =
        parse_double_flag("barrier-timeout", *barrier_timeout_flag);
    // Bounded above too: "inf" or 1e300 would overflow the
    // milliseconds conversion into a negative (already-expired) timeout.
    if (!std::isfinite(barrier_timeout_s) || barrier_timeout_s <= 0.0 ||
        barrier_timeout_s > 1e7) {
      throw std::runtime_error(
          "flag --barrier-timeout expects seconds in (0, 1e7], got '" +
          *barrier_timeout_flag + "'");
    }
  }
  if (shard_flag && workers_flag) {
    throw std::runtime_error(
        "--shard and --workers are mutually exclusive (a shard worker is "
        "spawned BY --workers)");
  }
  if ((shard_flag || worker_count > 1) && !cache_dir) {
    throw std::runtime_error(
        "distributed exploration requires --cache-dir (shard workers meet "
        "only through cache segments)");
  }
  if (step1_sharded && !shard_flag && worker_count <= 1) {
    throw std::runtime_error(
        "--step1-sharded needs a fleet: combine it with --shard I/N or "
        "--workers N");
  }

  if (worker_count > 1) {
    // Coordinator: re-exec ourselves as one worker per shard (forwarding
    // every exploration flag, swapping --workers for --shard), merge the
    // segments they wrote, then fall through to the standard exploration
    // below — which replays the merged cache with zero executed
    // simulations and prints the usual (byte-identical) report.
    std::vector<std::string> base{dist::self_executable(argv0), "explore"};
    for (const auto& [key, value] : args.flags) {
      if (key == "workers" || key == "log" || key == "csv") continue;
      base.push_back("--" + key);
      if (!value.empty()) base.push_back(value);
    }
    std::vector<std::vector<std::string>> commands;
    commands.reserve(worker_count);
    for (std::size_t i = 0; i < worker_count; ++i) {
      std::vector<std::string> command = base;
      command.push_back("--shard");
      command.push_back(std::to_string(i) + "/" +
                        std::to_string(worker_count));
      commands.push_back(std::move(command));
    }
    const std::vector<dist::ProcessResult> results =
        dist::run_worker_processes(commands);
    bool all_ok = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (results[i].ok()) continue;
      all_ok = false;
      std::cerr << "error: shard worker " << i << "/" << worker_count;
      if (!results[i].spawned) {
        std::cerr << " failed to spawn\n";
      } else if (results[i].signaled) {
        std::cerr << " died on signal " << results[i].term_signal << '\n';
      } else {
        std::cerr << " exited with code " << results[i].exit_code << '\n';
      }
    }
    if (!all_ok) return 1;
    const dist::MergeStats merged = dist::SegmentMerger::merge(*cache_dir);
    std::cout << "distributed: " << worker_count << " workers, merged "
              << merged.segment_files << " segments (" << merged.entries
              << " entries, " << merged.duplicates_dropped
              << " duplicates dropped)\n";
  }

  api::Exploration session(api::registry().make_study(
      app, core::CaseStudyOptions{}.scaled(scale)));
  // Span tracing is observational only: the report (and the warm-cache
  // byte-identity guarantee) is unaffected by --trace.
  std::optional<obs::TraceWriter> tracer;
  if (trace_path) {
    tracer.emplace();
    session.trace_sink(&*tracer);
  }
  const auto flush_trace = [&] {
    if (!tracer) return;
    if (!tracer->write_file(*trace_path)) {
      std::cerr << "error: cannot write trace file " << *trace_path << '\n';
      return;
    }
    std::cerr << "wrote " << tracer->event_count() << " trace events to "
              << *trace_path << '\n';
  };
  if (jobs) session.jobs(job_count);
  if (survivor_cap) session.survivor_cap(survivor_cap_fraction);
  if (cache_dir) session.cache_dir(*cache_dir);
  if (step1_sharded) session.step1_sharded(true);
  session.barrier_timeout(std::chrono::milliseconds(
      std::llround(barrier_timeout_s * 1000.0)));
  if (args.has("greedy")) {
    session.step1_policy(core::Step1Policy::kGreedyPerSlot);
  }
  if (args.has("progress")) {
    session.on_progress([](const core::StepProgress& p) {
      // One line per ~10% (and at the edges) to keep stderr readable.
      const std::size_t stride = std::max<std::size_t>(1, p.total / 10);
      if (p.done == 0 || p.done == p.total || p.done % stride == 0) {
        std::cerr << "[step " << p.step << "] " << p.done << '/' << p.total
                  << " simulations\n";
      }
    });
  }

  if (shard_flag) {
    // Worker mode: simulate this shard, checkpoint the segment, report on
    // stderr (stdout stays the coordinator's), skip the paper report —
    // a worker's in-memory report is partial by design.
    std::signal(SIGTERM, on_terminate_signal);
    std::signal(SIGINT, on_terminate_signal);
    session.shard(shard.first, shard.second).cancel_token(cancel_token());
    const core::ExplorationReport& report = session.run();
    const std::string segment = core::PersistentSimulationCache(*cache_dir)
                                    .segment_path(report.segment_tag);
    std::cerr << "[ddtr shard " << shard.first << '/' << shard.second << "] "
              << report.app_name << ": executed "
              << report.executed_simulations() << ", replayed "
              << report.cache_hits << ", foreign "
              << report.skipped_foreign_shard << ", stored "
              << report.persistent_stored << " -> " << segment << '\n';
    if (report.cancelled) {
      std::cerr << "[ddtr shard " << shard.first << '/' << shard.second
                << "] cancelled — segment checkpointed ("
                << report.persistent_stored << " records)\n";
    }
    flush_trace();
    return 0;
  }

  const core::ExplorationReport& report = session.run();
  flush_trace();

  std::cout << "application: " << report.app_name << '\n'
            << "configurations: " << report.scenario_count << '\n'
            << "exhaustive simulations: " << report.exhaustive_simulations
            << '\n'
            << "reduced simulations:   " << report.reduced_simulations()
            << '\n'
            << "executed simulations:  " << report.executed_simulations()
            << " (cache hit rate "
            << support::format_percent(report.cache_hit_rate()) << ")\n";
  if (cache_dir) {
    std::cout << "persistent cache:      loaded " << report.persistent_loaded
              << ", stored " << report.persistent_stored << " records in "
              << *cache_dir << '\n';
  }
  std::cout << "survivors after step 1: " << report.survivors.size() << '\n'
            << "Pareto-optimal combinations:\n";
  for (const auto& r : report.pareto_records()) {
    std::cout << "  " << r.combo.label() << "  energy "
              << support::format_double(r.metrics.energy_mj, 4)
              << " mJ, time "
              << support::format_double(r.metrics.time_s * 1e3, 3)
              << " ms, accesses " << support::format_count(r.metrics.accesses)
              << ", footprint "
              << support::format_bytes(r.metrics.footprint_bytes) << '\n';
  }
  std::cout << "\nper-metric best combinations (step 2 logs):\n";
  core::print_best_by_metric(std::cout, report.step2_records);

  if (log_path) {
    std::ofstream os(*log_path);
    os << report.serialized_records();
    std::cout << "\nwrote "
              << report.step1_records.size() + report.step2_records.size()
              << " records to " << *log_path << '\n';
  }
  if (csv_prefix) {
    {
      std::ofstream os(*csv_prefix + "_records.csv");
      core::write_records_csv(os, report.step2_records);
    }
    {
      std::ofstream os(*csv_prefix + "_time_energy.csv");
      core::write_pareto_csv(os, report.step2_records, 1, 0);
    }
    {
      std::ofstream os(*csv_prefix + "_accesses_footprint.csv");
      core::write_pareto_csv(os, report.step2_records, 2, 3);
    }
    std::cout << "wrote " << *csv_prefix << "_{records,time_energy,"
              << "accesses_footprint}.csv\n";
  }
  return 0;
}

// ddtr lint [PATH ...] — the project linter (see tools/lint/lint.h), the
// exact pass the `lint` ctest and the CI lint job run. Exit 1 on any
// finding so scripts can gate on it.
int cmd_lint(const Args& raw_args) {
  // The generic parser attaches a following positional to any flag;
  // lint's boolean flags must give theirs back (`lint --fix src`).
  Args args = raw_args;
  for (auto& [k, v] : args.flags) {
    if ((k == "fix" || k == "dry-run" || k == "update-accounting") &&
        !v.empty()) {
      args.positional.push_back(v);
      v.clear();
    }
  }
  lint::RunOptions options;
  options.repo_root = args.valued("repo-root").value_or(".");
  options.update_accounting = args.has("update-accounting");
  options.fix = args.has("fix");
  options.dry_run = args.has("dry-run");
  options.diff_ref = args.valued("diff").value_or("");
  options.compile_commands = args.valued("compile-commands").value_or("");
  options.roots = args.positional;
  if (options.roots.empty()) {
    for (const char* dir : {"src", "tests", "tools", "bench"}) {
      options.roots.push_back(options.repo_root + "/" + dir);
    }
  }
  return lint::run_lint(options, std::cout) == 0 ? 0 : 1;
}

// ddtr cache <stats|verify|clear|merge> DIR — inspection and maintenance
// of a persistent-cache directory (main file + per-writer segments).
int cmd_cache(const Args& args) {
  if (args.positional.size() != 2) return usage();
  const std::string& op = args.positional[0];
  const std::string& dir = args.positional[1];

  if (op == "stats") {
    const dist::CacheStats stats = dist::inspect_cache(dir);
    support::TextTable table({"property", "value"});
    table.add_row({"directory", dir});
    table.add_row({"files", std::to_string(stats.files)});
    table.add_row({"bytes", support::format_bytes(stats.bytes)});
    table.add_row({"entries", std::to_string(stats.entries)});
    table.add_row({"duplicates", std::to_string(stats.duplicates)});
    table.add_row({"corrupt entries", std::to_string(stats.corrupt)});
    table.print(std::cout);
    if (!stats.apps.empty()) {
      std::cout << '\n';
      support::TextTable apps({"workload", "entries"});
      for (const auto& [name, count] : stats.apps) {
        apps.add_row({name, std::to_string(count)});
      }
      apps.print(std::cout);
    }
    if (!stats.model_fingerprints.empty()) {
      std::cout << '\n';
      support::TextTable models({"model fingerprint", "entries"});
      for (const auto& [fingerprint, count] : stats.model_fingerprints) {
        models.add_row({fingerprint, std::to_string(count)});
      }
      models.print(std::cout);
    }
    std::cout << '\n' << stats.markers.size() << " barrier marker"
              << (stats.markers.size() == 1 ? "" : "s");
    if (!stats.markers.empty()) {
      std::cout << ":\n";
      for (const std::string& name : stats.markers) {
        std::cout << "  " << name << '\n';
      }
    } else {
      std::cout << '\n';
    }
    return 0;
  }

  if (op == "verify") {
    const dist::VerifyReport report = dist::verify_cache(dir);
    support::TextTable table({"file", "header", "entries", "corrupt",
                              "torn tail bytes"});
    for (const auto& [path, check] : report.files) {
      if (!check.present) {
        table.add_row({path, "absent", "-", "-", "-"});
        continue;
      }
      if (check.empty) {
        // Zero-length: the scar of a crash before the first write —
        // tolerated, rewritten by the next store.
        table.add_row({path, "empty", "0", "0", "0"});
        continue;
      }
      table.add_row({path, check.header_valid ? "ok" : "INVALID",
                     std::to_string(check.entries_ok),
                     std::to_string(check.entries_corrupt),
                     std::to_string(check.trailing_bytes)});
    }
    table.print(std::cout);
    std::cout << (report.ok() ? "cache verify: OK\n"
                              : "cache verify: CORRUPT\n");
    return report.ok() ? 0 : 1;
  }

  if (op == "clear") {
    const std::size_t removed = dist::clear_cache(dir);
    std::cout << "removed " << removed << " cache file"
              << (removed == 1 ? "" : "s") << " from " << dir << '\n';
    return 0;
  }

  if (op == "merge") {
    const dist::MergeStats stats = dist::SegmentMerger::merge(dir);
    std::cout << "merged " << stats.segment_files << " segments into "
              << core::PersistentSimulationCache(dir).file_path() << ": "
              << stats.entries << " entries, " << stats.duplicates_dropped
              << " duplicates dropped, "
              << support::format_bytes(stats.bytes_before) << " -> "
              << support::format_bytes(stats.bytes_after) << '\n';
    return 0;
  }

  if (op == "gc") {
    const double max_age_s =
        parse_double_flag("max-age-s", args.require("max-age-s"));
    if (!std::isfinite(max_age_s) || max_age_s < 0.0 || max_age_s > 1e10) {
      throw std::runtime_error(
          "flag --max-age-s expects seconds in [0, 1e10], got '" +
          args.require("max-age-s") + "'");
    }
    const dist::GcStats stats = dist::gc_cache(dir, max_age_s);
    std::cout << "gc: removed " << stats.segments_removed << " segment"
              << (stats.segments_removed == 1 ? "" : "s") << " and "
              << stats.markers_removed << " marker"
              << (stats.markers_removed == 1 ? "" : "s") << " older than "
              << support::format_double(max_age_s, 3) << " s (" << stats.kept
              << " kept) in " << dir << '\n';
    return 0;
  }

  std::cerr << "error: unknown cache operation '" << op
            << "' (stats|verify|clear|merge|gc)\n";
  return 2;
}

std::optional<std::size_t> metric_index(const std::string& name) {
  for (std::size_t m = 0; m < energy::kMetricCount; ++m) {
    if (name == energy::kMetricNames[m]) return m;
  }
  return std::nullopt;
}

int cmd_pareto(const Args& args) {
  const std::string log_path = args.require("log");
  std::ifstream is(log_path);
  if (!is) {
    std::cerr << "cannot open " << log_path << '\n';
    return 1;
  }
  core::ResultLog log = core::ResultLog::load(is);
  std::vector<core::SimulationRecord> records = log.records();
  if (const auto app = args.valued("app")) records = log.for_app(*app);

  std::size_t mx = 1, my = 0;  // default: time vs energy
  if (const auto x = args.valued("x")) {
    const auto idx = metric_index(*x);
    if (!idx) return usage();
    mx = *idx;
  }
  if (const auto y = args.valued("y")) {
    const auto idx = metric_index(*y);
    if (!idx) return usage();
    my = *idx;
  }

  std::vector<energy::Metrics> points;
  for (const auto& r : records) points.push_back(r.metrics);
  const auto front = core::pareto_front_2d(points, mx, my);
  support::TextTable table({"combination", "network", "config",
                            energy::kMetricNames[mx],
                            energy::kMetricNames[my]});
  for (std::size_t idx : front) {
    const auto v = points[idx].as_array();
    table.add_row({records[idx].combo.label(), records[idx].network,
                   records[idx].config, support::format_double(v[mx], 6),
                   support::format_double(v[my], 6)});
  }
  table.print(std::cout);
  std::cout << front.size() << " Pareto-optimal points out of "
            << records.size() << " records\n";
  return 0;
}

// --- serve: the long-lived exploration daemon and its client -----------

// The running daemon, for the signal handlers. request_stop() is a bare
// atomic store, so calling it from a handler is safe; the pointer itself
// is atomic for the same reason.
std::atomic<serve::Server*> g_serve_server{nullptr};

void on_serve_signal(int) {
  if (serve::Server* server = g_serve_server.load()) server->request_stop();
}

int cmd_serve(const Args& args) {
  serve::ServerOptions options;
  options.socket_path = args.require("socket");
  if (const auto dir = args.valued("cache-dir")) options.cache_dir = *dir;
  if (const auto jobs = args.valued("jobs")) {
    options.jobs = parse_count_flag("jobs", *jobs);
  }
  if (const auto every = args.valued("progress-every")) {
    options.progress_every_s = parse_double_flag("progress-every", *every);
    // Same bounding rationale as --barrier-timeout: "inf" or 1e300 would
    // overflow the steady-clock duration conversion.
    if (!std::isfinite(options.progress_every_s) ||
        options.progress_every_s <= 0.0 || options.progress_every_s > 1e7) {
      throw std::runtime_error(
          "flag --progress-every expects seconds in (0, 1e7], got '" +
          *every + "'");
    }
  }
  options.log = &std::cout;
  const auto trace_path = args.valued("trace");
  std::optional<obs::TraceWriter> tracer;
  if (trace_path) {
    tracer.emplace();
    options.trace = &*tracer;
  }

  serve::Server server(options);
  server.start();
  // Drain-and-flush on SIGTERM/SIGINT: in-flight sessions finish, the
  // persistent cache is compacted, the socket file is removed.
  g_serve_server.store(&server);
  std::signal(SIGTERM, on_serve_signal);
  std::signal(SIGINT, on_serve_signal);
  server.serve_forever();
  g_serve_server.store(nullptr);
  if (tracer) {
    if (tracer->write_file(*trace_path)) {
      std::cout << "[serve] wrote " << tracer->event_count()
                << " trace events to " << *trace_path << '\n';
    } else {
      std::cerr << "error: cannot write trace file " << *trace_path << '\n';
    }
  }
  return 0;
}

// Shared result rendering of `submit` and `results`.
void print_result(const serve::ResultFrame& result,
                  const std::optional<std::string>& log_path) {
  std::cout << "job " << result.job_id << " (" << result.app << "), run "
            << result.runs << ":\n"
            << "executed simulations:  " << result.executed << " of "
            << result.logical << " logical (cache hits " << result.cache_hits
            << ")\n"
            << "persistent cache:      loaded " << result.persistent_loaded
            << ", stored " << result.persistent_stored << '\n'
            << "survivors after step 1: " << result.survivors << '\n'
            << "Pareto-optimal combinations: " << result.pareto_count << '\n';
  if (!result.pareto.empty()) std::cout << result.pareto;
  if (log_path) {
    std::ofstream os(*log_path);
    os << result.records;
    std::cout << "wrote result records to " << *log_path << '\n';
  }
}

int cmd_submit(const Args& args) {
  const std::string socket = args.require("socket");
  serve::SubmitRequest request;
  request.app = args.require("app");
  if (const auto scale = args.valued("scale")) {
    request.scale = parse_double_flag("scale", *scale);
  }
  if (const auto packets = args.valued("packets")) {
    request.packets = parse_count_flag("packets", *packets);
  }
  if (const auto offset = args.valued("seed-offset")) {
    request.seed_offset = parse_count_flag("seed-offset", *offset);
  }
  request.greedy = args.has("greedy") ? 1 : 0;
  if (const auto cap = args.valued("survivor-cap")) {
    request.survivor_cap = parse_double_flag("survivor-cap", *cap);
  }
  if (const auto jobs = args.valued("jobs")) {
    request.jobs = parse_count_flag("jobs", *jobs);
  }
  if (const auto every = args.valued("every")) {
    request.every_s = parse_double_flag("every", *every);
    // Same bounding rationale as --barrier-timeout: "inf" or 1e300 would
    // overflow the deadline arithmetic.
    if (!std::isfinite(request.every_s) || request.every_s <= 0.0 ||
        request.every_s > 1e7) {
      throw std::runtime_error(
          "flag --every expects seconds in (0, 1e7], got '" + *every + "'");
    }
  }
  if (const auto x = args.valued("x")) request.metric_x = *x;
  if (const auto y = args.valued("y")) request.metric_y = *y;
  const auto log_path = args.valued("log");

  serve::Client client(socket);
  std::cout << "daemon: " << client.hello().warm_entries
            << " warm records, " << client.hello().warm_traces
            << " warm traces\n";
  serve::Client::ProgressFn on_progress;
  if (args.has("progress")) {
    on_progress = [](const serve::ProgressFrame& tick) {
      std::cerr << "[job " << tick.job_id << " step " << tick.step << "] "
                << tick.done << '/' << tick.total << " simulations\n";
    };
  }
  print_result(client.submit(request, on_progress), log_path);
  return 0;
}

int cmd_status(const Args& args) {
  serve::Client client(args.require("socket"));
  const serve::StatusReply reply = client.status();
  std::cout << reply.warm_entries << " warm records, " << reply.jobs.size()
            << " job" << (reply.jobs.size() == 1 ? "" : "s") << '\n';
  if (reply.jobs.empty()) return 0;
  support::TextTable table(
      {"job", "app", "state", "runs", "last executed", "every_s"});
  for (const serve::JobStatus& job : reply.jobs) {
    table.add_row({std::to_string(job.id), job.app, job.state,
                   std::to_string(job.runs),
                   std::to_string(job.last_executed),
                   job.every_s > 0.0 ? support::format_double(job.every_s, 3)
                                     : "-"});
  }
  table.print(std::cout);
  return 0;
}

// ddtr stats — live introspection of a running daemon: uptime, cache
// behavior since boot, scheduler activity, and the full job lifecycle
// table. With --metrics, the daemon's metrics-registry dump rides along.
int cmd_stats(const Args& args) {
  serve::Client client(args.require("socket"));
  const serve::StatsReply reply = client.stats(args.has("metrics"));
  const std::uint64_t hit_total = reply.cache_hits + reply.cache_misses;
  const double hit_rate =
      hit_total == 0 ? 0.0
                     : static_cast<double>(reply.cache_hits) /
                           static_cast<double>(hit_total);
  support::TextTable table({"property", "value"});
  table.add_row({"uptime_s",
                 support::format_double(
                     static_cast<double>(reply.uptime_ms) / 1000.0, 3)});
  table.add_row({"warm records", std::to_string(reply.warm_entries)});
  table.add_row({"sessions served", std::to_string(reply.sessions_served)});
  table.add_row({"cache hits (boot)", std::to_string(reply.cache_hits)});
  table.add_row({"cache misses (boot)", std::to_string(reply.cache_misses)});
  table.add_row({"cache hit rate", support::format_percent(hit_rate)});
  table.add_row({"jobs submitted", std::to_string(reply.jobs_submitted)});
  table.add_row({"scheduler re-runs",
                 std::to_string(reply.scheduler_reruns)});
  table.print(std::cout);
  if (!reply.jobs.empty()) {
    std::cout << '\n';
    support::TextTable jobs({"job", "app", "state", "runs", "last executed",
                             "every_s", "submit_ms", "start_ms",
                             "finish_ms"});
    for (const serve::JobStats& job : reply.jobs) {
      jobs.add_row({std::to_string(job.id), job.app, job.state,
                    std::to_string(job.runs),
                    std::to_string(job.last_executed),
                    job.every_s > 0.0
                        ? support::format_double(job.every_s, 3)
                        : "-",
                    std::to_string(job.submit_ms),
                    std::to_string(job.start_ms),
                    std::to_string(job.finish_ms)});
    }
    jobs.print(std::cout);
  }
  if (!reply.metrics_text.empty()) {
    std::cout << "\nmetrics:\n" << reply.metrics_text;
  }
  return 0;
}

// ddtr tracecheck FILE — the CI-facing validator for --trace output:
// strict JSON, the trace_event document shape, and balanced begin/end
// spans per (pid, tid). Exit 1 with a one-line diagnostic on any defect.
int cmd_tracecheck(const Args& args) {
  if (args.positional.size() != 1) return usage();
  std::ifstream is(args.positional[0], std::ios::binary);
  if (!is) {
    std::cerr << "cannot open " << args.positional[0] << '\n';
    return 1;
  }
  std::ostringstream content;
  content << is.rdbuf();
  const std::string problem = obs::check_trace(content.str());
  if (!problem.empty()) {
    std::cerr << "tracecheck: " << args.positional[0] << ": " << problem
              << '\n';
    return 1;
  }
  std::cout << "tracecheck: " << args.positional[0] << ": OK\n";
  return 0;
}

int cmd_results(const Args& args) {
  const std::string socket = args.require("socket");
  const std::size_t job_id = parse_count_flag("job", args.require("job"));
  serve::Client client(socket);
  print_result(client.results(job_id), args.valued("log"));
  return 0;
}

int cmd_shutdown(const Args& args) {
  serve::Client client(args.require("socket"));
  const serve::ShutdownAck ack = client.shutdown();
  std::cout << "daemon draining after " << ack.sessions_served
            << " session" << (ack.sessions_served == 1 ? "" : "s") << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv, 2);
  try {
    if (command == "apps") return cmd_apps();
    if (command == "ddts") return cmd_ddts();
    if (command == "presets") return cmd_presets();
    if (command == "tracegen") return cmd_tracegen(args);
    if (command == "traceparse") return cmd_traceparse(args);
    if (command == "explore") return cmd_explore(args, argv[0]);
    if (command == "pareto") return cmd_pareto(args);
    if (command == "lint") return cmd_lint(args);
    if (command == "cache") return cmd_cache(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "submit") return cmd_submit(args);
    if (command == "status") return cmd_status(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "results") return cmd_results(args);
    if (command == "shutdown") return cmd_shutdown(args);
    if (command == "tracecheck") return cmd_tracecheck(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
