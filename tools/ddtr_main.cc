// ddtr — the command-line front end of the exploration framework, the
// counterpart of the paper's "fully automated tools" (§3.2/§3.3 tool
// support, Figure 2). Subcommands:
//
//   ddtr presets                          list the synthetic network presets
//   ddtr tracegen  --preset P [...]       generate a trace file
//   ddtr traceparse FILE                  extract network parameters
//   ddtr explore   --app A [...]          run the 3-step methodology
//   ddtr pareto    --log FILE [...]       post-process a result log
//
// Every exploration writes a ResultLog that `pareto` can re-process later
// (the paper's "log files -> Perl post-processing" flow).
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/case_studies.h"
#include "core/explorer.h"
#include "core/pareto.h"
#include "core/report.h"
#include "core/result_log.h"
#include "nettrace/generator.h"
#include "nettrace/parser.h"
#include "nettrace/presets.h"
#include "support/table.h"

namespace {

using namespace ddtr;

int usage() {
  std::cerr <<
      "usage:\n"
      "  ddtr presets\n"
      "  ddtr tracegen --preset NAME [--packets N] [--seed-offset K] "
      "[--out FILE]\n"
      "  ddtr traceparse FILE\n"
      "  ddtr explore --app route|url|ipchains|drr [--scale S] "
      "[--jobs N] [--log FILE] [--csv PREFIX]\n"
      "    --jobs N: concurrent simulation lanes (default 1; 0 = one per\n"
      "              hardware thread); output is identical at any N\n"
      "  ddtr pareto --log FILE [--app NAME] [--x METRIC] [--y METRIC]\n"
      "metrics: energy_mJ time_s accesses footprint_B\n";
  return 2;
}

// Minimal flag parsing: --name value pairs plus positionals.
struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;

  std::optional<std::string> flag(const std::string& name) const {
    for (const auto& [k, v] : flags) {
      if (k == name) return v;
    }
    return std::nullopt;
  }
};

Args parse_args(int argc, char** argv, int from) {
  Args args;
  for (int i = from; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0 && i + 1 < argc) {
      args.flags.emplace_back(arg.substr(2), argv[++i]);
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

int cmd_presets() {
  support::TextTable table({"name", "nodes", "rate_pps", "burstiness",
                            "mtu", "http", "description"});
  for (const net::NetworkPreset& p : net::all_network_presets()) {
    table.add_row({p.name, std::to_string(p.node_count),
                   support::format_double(p.mean_rate_pps, 0),
                   support::format_double(p.burstiness, 1),
                   std::to_string(p.mtu),
                   support::format_percent(p.http_fraction, 0),
                   p.description});
  }
  table.print(std::cout);
  return 0;
}

int cmd_tracegen(const Args& args) {
  const auto preset_name = args.flag("preset");
  if (!preset_name) return usage();
  net::TraceGenerator::Options options;
  if (const auto packets = args.flag("packets")) {
    options.packet_count = std::stoul(*packets);
  }
  if (const auto offset = args.flag("seed-offset")) {
    options.seed_offset = std::stoull(*offset);
  }
  const net::Trace trace =
      net::TraceGenerator::generate(net::network_preset(*preset_name),
                                    options);
  if (const auto out = args.flag("out")) {
    std::ofstream os(*out);
    trace.save(os);
    std::cout << "wrote " << trace.size() << " packets to " << *out << '\n';
  } else {
    trace.save(std::cout);
  }
  return 0;
}

int cmd_traceparse(const Args& args) {
  if (args.positional.empty()) return usage();
  std::ifstream is(args.positional[0]);
  if (!is) {
    std::cerr << "cannot open " << args.positional[0] << '\n';
    return 1;
  }
  const net::Trace trace = net::Trace::load(is);
  const net::NetworkParams params = net::TraceParser::extract(trace);
  support::TextTable table({"parameter", "value"});
  table.add_row({"trace", params.trace_name});
  table.add_row({"packets", std::to_string(params.packet_count)});
  table.add_row({"duration_s", support::format_double(params.duration_s, 3)});
  table.add_row({"nodes", std::to_string(params.node_count)});
  table.add_row({"flows", std::to_string(params.flow_count)});
  table.add_row(
      {"throughput_bps", support::format_double(params.throughput_bps, 0)});
  table.add_row({"mean_packet_B",
                 support::format_double(params.mean_packet_bytes, 1)});
  table.add_row({"max_packet_B", std::to_string(params.max_packet_bytes)});
  table.add_row({"http_fraction",
                 support::format_percent(params.http_fraction)});
  table.add_row({"udp_fraction",
                 support::format_percent(params.udp_fraction)});
  table.print(std::cout);
  return 0;
}

int cmd_explore(const Args& args) {
  const auto app = args.flag("app");
  if (!app) return usage();
  double scale = 0.25;
  if (const auto s = args.flag("scale")) scale = std::stod(*s);
  const core::CaseStudyOptions options =
      core::CaseStudyOptions{}.scaled(scale);

  core::ExplorationOptions exploration_options;
  if (const auto jobs = args.flag("jobs")) {
    // Digits only: stoul would wrap "-1" to 2^64-1 lanes.
    if (jobs->empty() ||
        jobs->find_first_not_of("0123456789") != std::string::npos) {
      std::cerr << "error: --jobs expects a non-negative integer, got '"
                << *jobs << "'\n";
      return usage();
    }
    exploration_options.jobs = std::stoul(*jobs);
  }

  core::CaseStudy study;
  if (*app == "route") study = core::make_route_study(options);
  else if (*app == "url") study = core::make_url_study(options);
  else if (*app == "ipchains") study = core::make_ipchains_study(options);
  else if (*app == "drr") study = core::make_drr_study(options);
  else return usage();

  const core::ExplorationEngine engine(core::make_paper_energy_model(),
                                       exploration_options);
  const core::ExplorationReport report = engine.explore(study);

  std::cout << "application: " << report.app_name << '\n'
            << "configurations: " << report.scenario_count << '\n'
            << "exhaustive simulations: " << report.exhaustive_simulations
            << '\n'
            << "reduced simulations:   " << report.reduced_simulations()
            << '\n'
            << "executed simulations:  " << report.executed_simulations()
            << " (cache hit rate "
            << support::format_percent(report.cache_hit_rate()) << ")\n"
            << "survivors after step 1: " << report.survivors.size() << '\n'
            << "Pareto-optimal combinations:\n";
  for (const auto& r : report.pareto_records()) {
    std::cout << "  " << r.combo.label() << "  energy "
              << support::format_double(r.metrics.energy_mj, 4)
              << " mJ, time "
              << support::format_double(r.metrics.time_s * 1e3, 3)
              << " ms, accesses " << support::format_count(r.metrics.accesses)
              << ", footprint "
              << support::format_bytes(r.metrics.footprint_bytes) << '\n';
  }
  std::cout << "\nper-metric best combinations (step 2 logs):\n";
  core::print_best_by_metric(std::cout, report.step2_records);

  if (const auto log_path = args.flag("log")) {
    core::ResultLog log;
    log.append_all(report.step1_records);
    log.append_all(report.step2_records);
    std::ofstream os(*log_path);
    log.save(os);
    std::cout << "\nwrote " << log.size() << " records to " << *log_path
              << '\n';
  }
  if (const auto csv_prefix = args.flag("csv")) {
    {
      std::ofstream os(*csv_prefix + "_records.csv");
      core::write_records_csv(os, report.step2_records);
    }
    {
      std::ofstream os(*csv_prefix + "_time_energy.csv");
      core::write_pareto_csv(os, report.step2_records, 1, 0);
    }
    {
      std::ofstream os(*csv_prefix + "_accesses_footprint.csv");
      core::write_pareto_csv(os, report.step2_records, 2, 3);
    }
    std::cout << "wrote " << *csv_prefix << "_{records,time_energy,"
              << "accesses_footprint}.csv\n";
  }
  return 0;
}

std::optional<std::size_t> metric_index(const std::string& name) {
  for (std::size_t m = 0; m < energy::kMetricCount; ++m) {
    if (name == energy::kMetricNames[m]) return m;
  }
  return std::nullopt;
}

int cmd_pareto(const Args& args) {
  const auto log_path = args.flag("log");
  if (!log_path) return usage();
  std::ifstream is(*log_path);
  if (!is) {
    std::cerr << "cannot open " << *log_path << '\n';
    return 1;
  }
  core::ResultLog log = core::ResultLog::load(is);
  std::vector<core::SimulationRecord> records = log.records();
  if (const auto app = args.flag("app")) records = log.for_app(*app);

  std::size_t mx = 1, my = 0;  // default: time vs energy
  if (const auto x = args.flag("x")) {
    const auto idx = metric_index(*x);
    if (!idx) return usage();
    mx = *idx;
  }
  if (const auto y = args.flag("y")) {
    const auto idx = metric_index(*y);
    if (!idx) return usage();
    my = *idx;
  }

  std::vector<energy::Metrics> points;
  for (const auto& r : records) points.push_back(r.metrics);
  const auto front = core::pareto_front_2d(points, mx, my);
  support::TextTable table({"combination", "network", "config",
                            energy::kMetricNames[mx],
                            energy::kMetricNames[my]});
  for (std::size_t idx : front) {
    const auto v = points[idx].as_array();
    table.add_row({records[idx].combo.label(), records[idx].network,
                   records[idx].config, support::format_double(v[mx], 6),
                   support::format_double(v[my], 6)});
  }
  table.print(std::cout);
  std::cout << front.size() << " Pareto-optimal points out of "
            << records.size() << " records\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv, 2);
  try {
    if (command == "presets") return cmd_presets();
    if (command == "tracegen") return cmd_tracegen(args);
    if (command == "traceparse") return cmd_traceparse(args);
    if (command == "explore") return cmd_explore(args);
    if (command == "pareto") return cmd_pareto(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
