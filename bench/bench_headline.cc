// Reproduces the paper's headline comparisons (§1, §4, §5):
//  * step 2 vs the original NetBench implementations (both dominant DDTs
//    as singly linked lists): energy savings up to 80%, performance
//    improvement up to 22%;
//  * step 3 trade-off extremes: up to 93% energy reduction and up to 48%
//    performance spread among Pareto-optimal choices;
//  * "without any increase in memory footprint and memory accesses".
#include <iostream>

#include "bench_common.h"
#include "core/pareto.h"
#include "ddt/factory.h"
#include "support/table.h"

int main() {
  using namespace ddtr;

  std::cout << "== Headline: refined DDTs vs original (all-SLL) NetBench "
               "implementations ==\n\n";

  support::TextTable table({"Application", "Energy saving", "Time saving",
                            "Accesses saving", "Footprint saving",
                            "best combo (energy)"});
  double best_energy_saving = 0.0;
  double best_time_saving = 0.0;
  for (const core::ExplorationReport& report : bench::all_reports()) {
    // Original implementation: SLL for every dominant structure, on the
    // representative scenario (present in step 1's full factorial space).
    const core::SimulationRecord* original = nullptr;
    for (const auto& r : report.step1_records) {
      if (r.combo.label() == "SLL+SLL") original = &r;
    }

    // The refined choice: the best-energy member of the step-1 space that
    // does not increase footprint or accesses relative to the original
    // (the paper's "without any increase in memory footprint and memory
    // accesses" claim).
    const core::SimulationRecord* refined = nullptr;
    for (const auto& r : report.step1_records) {
      if (r.metrics.footprint_bytes > original->metrics.footprint_bytes ||
          r.metrics.accesses > original->metrics.accesses) {
        continue;
      }
      if (refined == nullptr ||
          r.metrics.energy_mj < refined->metrics.energy_mj) {
        refined = &r;
      }
    }

    const auto saving = [](double orig, double now) {
      return orig > 0.0 ? 1.0 - now / orig : 0.0;
    };
    const double e = saving(original->metrics.energy_mj,
                            refined->metrics.energy_mj);
    const double t =
        saving(original->metrics.time_s, refined->metrics.time_s);
    best_energy_saving = std::max(best_energy_saving, e);
    best_time_saving = std::max(best_time_saving, t);
    table.add_row(
        {report.app_name, support::format_percent(e),
         support::format_percent(t),
         support::format_percent(
             saving(static_cast<double>(original->metrics.accesses),
                    static_cast<double>(refined->metrics.accesses))),
         support::format_percent(
             saving(static_cast<double>(original->metrics.footprint_bytes),
                    static_cast<double>(refined->metrics.footprint_bytes))),
         refined->combo.label()});
  }
  table.print(std::cout);
  std::cout << "\nBest energy saving: "
            << support::format_percent(best_energy_saving)
            << " (paper: up to 80%); best time saving: "
            << support::format_percent(best_time_saving)
            << " (paper: up to 22%)\n";

  std::cout << "\n== Headline: step-3 extremes across Pareto-optimal "
               "choices ==\n\n";
  double max_energy_span = 0.0;
  double max_time_span = 0.0;
  for (const core::ExplorationReport& report : bench::all_reports()) {
    std::vector<energy::Metrics> pool;
    for (const auto& r : report.step2_records) pool.push_back(r.metrics);
    std::vector<energy::Metrics> pareto;
    for (std::size_t idx : core::pareto_filter(pool)) {
      pareto.push_back(pool[idx]);
    }
    max_energy_span =
        std::max(max_energy_span, core::tradeoff_span(pareto, 0));
    max_time_span = std::max(max_time_span, core::tradeoff_span(pareto, 1));
  }
  std::cout << "max energy reduction among Pareto-optimal choices: "
            << support::format_percent(max_energy_span)
            << " (paper: up to 93%)\n"
            << "max performance spread among Pareto-optimal choices: "
            << support::format_percent(max_time_span)
            << " (paper: up to 48%)\n\n";

  bench::BenchJson json("bench_headline");
  json.field("best_energy_saving", best_energy_saving)
      .field("best_time_saving", best_time_saving)
      .field("max_pareto_energy_span", max_energy_span)
      .field("max_pareto_time_span", max_time_span);
  bench::add_cache_fields(json, bench::all_reports()).emit();
  return 0;
}
