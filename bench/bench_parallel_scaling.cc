// Scaling of the parallel exploration engine on the Route case study:
// wall-clock speedup of explore() at jobs = 1/2/4/8 versus serial, the
// simulation-cache hit rate, and a byte-identical check of the parallel
// records against the serial baseline (the determinism contract of the
// index-addressed result slots). The step-2 saving from memoization is
// reported as executed vs logical simulation counts: with the cache, the
// representative scenario costs step 2 zero executed simulations.
//
// Note: speedup is bounded by the machine — on a single hardware thread
// the lanes serialize and speedup stays ~1.0 by construction.
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "support/table.h"

namespace {

using namespace ddtr;

}  // namespace

int main() {
  const core::CaseStudy study =
      api::registry().make_study("route", bench::bench_options());
  std::cerr << "[ddtr] Route study: " << study.scenarios.size()
            << " configurations, " << study.combination_count()
            << " combinations, scale " << bench::bench_scale()
            << ", hardware threads "
            << std::thread::hardware_concurrency() << "\n";

  const std::vector<std::size_t> jobs_sweep = {1, 2, 4, 8};
  support::TextTable table({"jobs", "seconds", "speedup", "cache hit rate",
                            "step2 executed", "step2 logical",
                            "identical to serial"});

  double serial_seconds = 0.0;
  std::string serial_bytes;
  std::ostringstream results_json;
  results_json << '[';

  for (std::size_t i = 0; i < jobs_sweep.size(); ++i) {
    const std::size_t jobs = jobs_sweep[i];
    core::ExplorationOptions options;
    options.jobs = jobs;
    // Opt-in cross-run cache: with DDTR_BENCH_CACHE_DIR set, the jobs=1
    // pass warms the cache and later passes replay it (records stay
    // byte-identical; the executed counts show the replays).
    options.cache_dir = bench::bench_cache_dir();
    const core::ExplorationEngine engine(core::make_paper_energy_model(),
                                         options);

    const auto t0 = std::chrono::steady_clock::now();
    const core::ExplorationReport report = engine.explore(study);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

    const std::string bytes = report.serialized_records();
    if (jobs == 1) {
      serial_seconds = seconds;
      serial_bytes = bytes;
    }
    const bool identical = bytes == serial_bytes;
    const double speedup = seconds > 0.0 ? serial_seconds / seconds : 0.0;

    table.add_row({std::to_string(jobs),
                   support::format_double(seconds, 3),
                   support::format_double(speedup, 2),
                   support::format_percent(report.cache_hit_rate()),
                   std::to_string(report.step2_executed_simulations),
                   std::to_string(report.step2_simulations),
                   identical ? "yes" : "NO"});

    if (i > 0) results_json << ',';
    results_json << "{\"jobs\":" << jobs << ",\"seconds\":" << seconds
                 << ",\"speedup\":" << speedup << ",\"cache_hit_rate\":"
                 << report.cache_hit_rate() << ",\"step2_executed\":"
                 << report.step2_executed_simulations
                 << ",\"step2_logical\":" << report.step2_simulations
                 << ",\"cache_hits\":" << report.cache_hits
                 << ",\"cache_misses\":" << report.cache_misses
                 << ",\"persistent_loaded\":" << report.persistent_loaded
                 << ",\"persistent_stored\":" << report.persistent_stored
                 << ",\"identical\":" << (identical ? "true" : "false")
                 << '}';
  }
  results_json << ']';

  std::cout << "== Parallel exploration scaling (Route) ==\n\n";
  table.print(std::cout);
  std::cout << '\n';

  bench::BenchJson json("bench_parallel_scaling");
  json.field("app", std::string("Route"))
      .field("hardware_threads",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .raw("results", results_json.str());
  json.emit();
  return 0;
}
