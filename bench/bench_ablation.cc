// Ablations of the methodology's design choices (DESIGN.md §7):
//  1. Step-1 pruning aggressiveness: survivor cap fraction vs exploration
//     cost and result quality (does the reduced flow still find the
//     combination the exhaustive flow would pick?).
//  2. Energy-model organization: scratchpad (paper-faithful, footprint-
//     sized SRAM) vs cached host hierarchy — does the winning combination
//     change, i.e. how sensitive are the paper's conclusions to the
//     platform model?
#include <algorithm>
#include <iostream>
#include <set>

#include "bench_common.h"
#include "support/table.h"

int main() {
  using namespace ddtr;

  const core::CaseStudy url =
      api::registry().make_study("url", bench::bench_options());

  std::cout << "== Ablation 1: step-1 survivor cap (URL case study) ==\n\n";
  // Exhaustive reference: best energy over the full factorial space on
  // every scenario would require 500 simulations; the representative-
  // scenario space is the upper bound any pruning can achieve on it.
  const core::ExplorationEngine reference_engine(
      core::make_paper_energy_model());
  const auto full_space = reference_engine.run_step1(url);
  std::string exhaustive_best;
  double exhaustive_best_energy = 1e300;
  for (const auto& r : full_space) {
    if (r.metrics.energy_mj < exhaustive_best_energy) {
      exhaustive_best_energy = r.metrics.energy_mj;
      exhaustive_best = r.combo.label();
    }
  }

  support::TextTable t1({"champions/metric", "cap fraction", "survivors",
                         "reduced sims", "best-energy combo kept?",
                         "energy penalty"});
  const std::pair<std::size_t, double> policies[] = {
      {1, 0.04}, {1, 0.08}, {2, 0.12}, {3, 0.20}, {5, 0.40}};
  for (const auto& [champions, cap] : policies) {
    core::ExplorationOptions options;
    options.survivor_cap_fraction = cap;
    options.champions_per_metric = champions;
    const core::ExplorationEngine engine(core::make_paper_energy_model(),
                                         options);
    const auto report = engine.explore(url);
    double best_kept = 1e300;
    bool kept = false;
    for (const auto& r : report.step2_records) {
      if (r.network == url.scenarios[url.representative].network) {
        best_kept = std::min(best_kept, r.metrics.energy_mj);
      }
      kept |= r.combo.label() == exhaustive_best;
    }
    t1.add_row({std::to_string(champions), support::format_percent(cap, 0),
                std::to_string(report.survivors.size()),
                std::to_string(report.reduced_simulations()),
                kept ? "yes" : "no",
                support::format_percent(
                    best_kept / exhaustive_best_energy - 1.0)});
  }
  t1.print(std::cout);
  std::cout << "(energy penalty: best step-2 energy on the representative "
               "network vs the exhaustive best)\n";

  std::cout << "\n== Ablation 1b: exhaustive vs greedy-per-slot step 1 "
               "(DRR case study — the paper's DRR row reports only 60 "
               "reduced simulations, below the 100 a full factorial would "
               "need) ==\n\n";
  {
    const core::CaseStudy drr =
        api::registry().make_study("drr", bench::bench_options());
    core::ExplorationOptions greedy_options;
    greedy_options.step1_policy = core::Step1Policy::kGreedyPerSlot;
    const core::ExplorationEngine greedy(core::make_paper_energy_model(),
                                         greedy_options);
    const core::ExplorationEngine exhaustive(core::make_paper_energy_model());
    const auto g = greedy.explore(drr);
    const auto e = exhaustive.explore(drr);
    const auto best_energy = [](const core::ExplorationReport& r) {
      double best = 1e300;
      for (const auto& rec : r.step2_records) {
        best = std::min(best, rec.metrics.energy_mj);
      }
      return best;
    };
    support::TextTable t1b({"policy", "step-1 sims", "reduced sims",
                            "pareto set", "best step-2 energy (mJ)"});
    t1b.add_row({"exhaustive", std::to_string(e.step1_simulations),
                 std::to_string(e.reduced_simulations()),
                 std::to_string(e.pareto_optimal.size()),
                 support::format_double(best_energy(e), 4)});
    t1b.add_row({"greedy-per-slot", std::to_string(g.step1_simulations),
                 std::to_string(g.reduced_simulations()),
                 std::to_string(g.pareto_optimal.size()),
                 support::format_double(best_energy(g), 4)});
    t1b.print(std::cout);
  }

  std::cout << "\n== Ablation 2: scratchpad vs cached platform model "
               "(URL, representative network) ==\n\n";
  const core::ExplorationEngine cached_engine{energy::EnergyModel{
      energy::MemoryHierarchy::cached()}};
  const auto cached_space = cached_engine.run_step1(url);

  const auto top_k = [](const std::vector<core::SimulationRecord>& records,
                        std::size_t k) {
    std::vector<const core::SimulationRecord*> sorted;
    for (const auto& r : records) sorted.push_back(&r);
    std::sort(sorted.begin(), sorted.end(), [](auto* a, auto* b) {
      return a->metrics.energy_mj < b->metrics.energy_mj;
    });
    sorted.resize(k);
    std::set<std::string> labels;
    for (auto* r : sorted) labels.insert(r->combo.label());
    return labels;
  };
  const auto scratch_top = top_k(full_space, 10);
  const auto cached_top = top_k(cached_space, 10);
  std::vector<std::string> common;
  std::set_intersection(scratch_top.begin(), scratch_top.end(),
                        cached_top.begin(), cached_top.end(),
                        std::back_inserter(common));

  std::cout << "energy winner (scratchpad): " << *top_k(full_space, 1).begin()
            << "\nenergy winner (cached):     "
            << *top_k(cached_space, 1).begin()
            << "\ntop-10 overlap between models: " << common.size()
            << "/10\n";
  std::cout << "\nInterpretation: large overlap means the paper's DDT "
               "ranking is robust to the platform model; the absolute "
               "energies differ, the ordering mostly does not.\n";
  return 0;
}
