// Reproduces Table 2: "Trade-offs achieved among Pareto-optimal points" —
// the relative spread of each metric across the final Pareto-optimal set,
// per case study.
//
// Paper reference values (energy / time / accesses / footprint):
//   Route 90%/20%/88%/30%, URL 52%/13%/70%/82%,
//   IPchains 38%/3%/87%/63%, DRR 93%/48%/53%/80%.
#include <iostream>
#include <set>
#include <vector>

#include "bench_common.h"
#include "core/pareto.h"
#include "support/table.h"

int main() {
  using namespace ddtr;

  std::cout << "== Table 2: Trade-offs achieved among Pareto-optimal "
               "points ==\n\n";

  support::TextTable table(
      {"Application", "Energy", "Exec. Time", "Mem. Accesses",
       "Mem. Footprint", "Pareto points"});
  for (const core::ExplorationReport& report : bench::all_reports()) {
    // The spread is measured over the union of the per-scenario
    // Pareto-optimal sets (the paper quotes the widest trade-offs visible
    // across its per-network curves), not only the aggregated
    // recommendation set.
    std::set<std::string> scenarios;
    for (const core::SimulationRecord& r : report.step2_records) {
      scenarios.insert(r.scenario_label());
    }
    std::vector<energy::Metrics> pareto_points;
    for (const std::string& label : scenarios) {
      const auto records = report.scenario_records(label);
      std::vector<energy::Metrics> pool;
      for (const auto& r : records) pool.push_back(r.metrics);
      for (std::size_t idx : core::pareto_filter(pool)) {
        pareto_points.push_back(pool[idx]);
      }
    }

    table.add_row(
        {report.app_name,
         support::format_percent(core::tradeoff_span(pareto_points, 0)),
         support::format_percent(core::tradeoff_span(pareto_points, 1)),
         support::format_percent(core::tradeoff_span(pareto_points, 2)),
         support::format_percent(core::tradeoff_span(pareto_points, 3)),
         std::to_string(pareto_points.size())});
  }
  table.print(std::cout);

  std::cout << "\nPaper reference rows (energy/time/accesses/footprint):\n"
               "  Route 90%/20%/88%/30%  URL 52%/13%/70%/82%\n"
               "  IPchains 38%/3%/87%/63%  DRR 93%/48%/53%/80%\n";

  std::cout << "\nAggregated Pareto-optimal set spreads (final "
               "recommendation set):\n";
  support::TextTable agg_table({"Application", "Energy", "Exec. Time",
                                "Mem. Accesses", "Mem. Footprint"});
  for (const core::ExplorationReport& report : bench::all_reports()) {
    std::vector<energy::Metrics> points;
    for (const core::SimulationRecord& r : report.pareto_records()) {
      points.push_back(r.metrics);
    }
    agg_table.add_row(
        {report.app_name,
         support::format_percent(core::tradeoff_span(points, 0)),
         support::format_percent(core::tradeoff_span(points, 1)),
         support::format_percent(core::tradeoff_span(points, 2)),
         support::format_percent(core::tradeoff_span(points, 3))});
  }
  agg_table.print(std::cout);
  return 0;
}
