// Reproduces Figure 3: (a) the full performance-vs-energy design space of
// the URL case study (all 100 DDT combinations on one network) and (b) the
// Pareto-optimal subset. Prints both series and writes
// fig3_url_pareto_space.csv for plotting.
#include <algorithm>
#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "core/pareto.h"
#include "core/report.h"
#include "support/table.h"

int main() {
  using namespace ddtr;

  const core::ExplorationReport& url = bench::all_reports()[1];
  const std::vector<core::SimulationRecord>& space = url.step1_records;

  std::cout << "== Figure 3(a): Performance vs. Energy Pareto space of URL "
               "(" << space.size() << " DDT combinations, network "
            << space.front().network << ") ==\n\n";

  std::vector<energy::Metrics> points;
  points.reserve(space.size());
  for (const auto& r : space) points.push_back(r.metrics);
  // The Pareto-optimal subset (4-D dominance, as the methodology computes
  // it) plotted in the time-energy plane — the paper's Figure 3(b).
  std::vector<std::size_t> front = core::pareto_filter(points);
  std::sort(front.begin(), front.end(), [&](std::size_t a, std::size_t b) {
    return points[a].time_s < points[b].time_s;
  });

  double emin = 1e300, emax = 0, tmin = 1e300, tmax = 0;
  for (const auto& m : points) {
    emin = std::min(emin, m.energy_mj);
    emax = std::max(emax, m.energy_mj);
    tmin = std::min(tmin, m.time_s);
    tmax = std::max(tmax, m.time_s);
  }
  std::cout << "design space: energy [" << support::format_double(emin, 4)
            << ", " << support::format_double(emax, 4) << "] mJ, time ["
            << support::format_double(tmin * 1e3, 3) << ", "
            << support::format_double(tmax * 1e3, 3) << "] ms\n"
            << "energy span max/min = "
            << support::format_double(emax / emin, 1)
            << "x, time span max/min = "
            << support::format_double(tmax / tmin, 1) << "x\n\n";

  std::cout << "== Figure 3(b): Pareto-optimal points (time vs energy) "
               "==\n\n";
  support::TextTable table({"combination", "time_ms", "energy_mJ",
                            "accesses", "footprint_B"});
  for (std::size_t idx : front) {
    const auto& r = space[idx];
    table.add_row({r.combo.label(),
                   support::format_double(r.metrics.time_s * 1e3, 3),
                   support::format_double(r.metrics.energy_mj, 4),
                   support::format_count(r.metrics.accesses),
                   support::format_count(r.metrics.footprint_bytes)});
  }
  table.print(std::cout);

  std::ofstream csv("fig3_url_pareto_space.csv");
  core::write_pareto_csv(csv, space, 1, 0);
  std::cout << "\nwrote fig3_url_pareto_space.csv (" << space.size()
            << " points, " << front.size() << " on the front)\n";

  // The paper's §4 URL summary: the best-energy Pareto point vs the most
  // energy-consuming Pareto-optimal point (52% reference), plus the other
  // three metrics over the Pareto set.
  std::vector<energy::Metrics> pareto_points;
  for (std::size_t idx : front) pareto_points.push_back(points[idx]);
  std::cout << "\nAmong Pareto-optimal points: energy reduction best-vs-worst "
            << support::format_percent(core::tradeoff_span(pareto_points, 0))
            << " (paper: 52%), time "
            << support::format_percent(core::tradeoff_span(pareto_points, 1))
            << " (paper: 13%)\n";
  return 0;
}
