// Scaling of the distributed (sharded) exploration flow on the URL case
// study: wall clock of the whole workers=N pipeline — N in-process shard
// workers, segment merge, coordinator replay — at workers = 1/2/4, the
// coordinator's executed-simulation count (0 for every sharded run: the
// merged segments cover the full unit space), and a byte-identical check
// against the plain serial run. Each multi-worker point also runs a
// --step1-sharded variant (workers split step 1 too and rendezvous in
// the segment barrier), which removes the replicated step-1 prefix that
// otherwise Amdahl-bounds the distributed speedup.
//
// Note: like bench_parallel_scaling, speedup is bounded by the machine —
// on a single hardware thread the shard workers serialize and the sharded
// runs pay the step-1 replication cost (each worker re-runs step 1, the
// seed of the shared survivor selection) without any step-2 win. On real
// cores — or across hosts via `ddtr explore --shard I/N` — the step-2
// fan-out is what scales.
#include <chrono>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "support/table.h"

namespace {

using namespace ddtr;

std::string scratch_dir(std::size_t workers, bool step1_sharded) {
  return (std::filesystem::temp_directory_path() /
          ("ddtr_bench_shard_w" + std::to_string(workers) +
           (step1_sharded ? "_s1" : "")))
      .string();
}

}  // namespace

int main() {
  const core::CaseStudy study =
      api::registry().make_study("url", bench::bench_options());
  std::cerr << "[ddtr] URL study: " << study.scenarios.size()
            << " configurations, " << study.combination_count()
            << " combinations, scale " << bench::bench_scale()
            << ", hardware threads "
            << std::thread::hardware_concurrency() << "\n";

  // The serial ground truth every sharded run must reproduce.
  api::Exploration serial(study);
  const auto serial_t0 = std::chrono::steady_clock::now();
  const std::string serial_bytes = serial.run().serialized_records();
  const double serial_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    serial_t0)
          .count();

  struct SweepPoint {
    std::size_t workers;
    bool step1_sharded;
  };
  const std::vector<SweepPoint> sweep = {
      {1, false}, {2, false}, {2, true}, {4, false}, {4, true}};
  support::TextTable table({"workers", "step1 sharded", "seconds", "speedup",
                            "coordinator executed", "identical to serial"});
  std::ostringstream results_json;
  results_json << '[';
  // The bench doubles as the only CI exercise of 4-way sharding: a
  // broken byte-identity or a coordinator that executes anything must
  // fail the run, not just print a sad table.
  bool all_ok = true;

  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const std::size_t workers = sweep[i].workers;
    const bool step1_sharded = sweep[i].step1_sharded;
    const std::string dir = scratch_dir(workers, step1_sharded);
    std::filesystem::remove_all(dir);

    api::Exploration session(study);
    session.cache_dir(dir);
    if (workers > 1) session.workers(workers);
    if (step1_sharded) session.step1_sharded();

    const auto t0 = std::chrono::steady_clock::now();
    const core::ExplorationReport& report = session.run();
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

    const bool identical = report.serialized_records() == serial_bytes;
    const double speedup = seconds > 0.0 ? serial_seconds / seconds : 0.0;
    // workers=1 is a plain cold cached run (executes everything); every
    // sharded run's coordinator pass must execute nothing.
    const std::size_t executed = report.executed_simulations();
    if (!identical || (workers > 1 && executed != 0)) all_ok = false;

    table.add_row({std::to_string(workers), step1_sharded ? "yes" : "no",
                   support::format_double(seconds, 3),
                   support::format_double(speedup, 2),
                   std::to_string(executed), identical ? "yes" : "NO"});

    if (i > 0) results_json << ',';
    results_json << "{\"workers\":" << workers << ",\"step1_sharded\":"
                 << (step1_sharded ? "true" : "false")
                 << ",\"seconds\":" << seconds << ",\"speedup\":" << speedup
                 << ",\"coordinator_executed\":" << executed
                 << ",\"persistent_loaded\":" << report.persistent_loaded
                 << ",\"identical\":" << (identical ? "true" : "false")
                 << '}';
    std::filesystem::remove_all(dir);
  }
  results_json << ']';

  std::cout << "== Distributed shard scaling (URL) ==\n\n";
  table.print(std::cout);
  std::cout << '\n';

  bench::BenchJson json("bench_shard_scaling");
  json.field("app", std::string("URL"))
      .field("serial_seconds", serial_seconds)
      .field("hardware_threads",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .raw("results", results_json.str());
  json.emit();
  if (!all_ok) {
    std::cerr << "[ddtr] FAIL: a sharded run diverged from the serial "
                 "baseline or executed simulations in the coordinator\n";
    return 1;
  }
  return 0;
}
