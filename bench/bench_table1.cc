// Reproduces Table 1: "Reduction of total simulations needed to explore
// the design space" — exhaustive vs reduced vs Pareto-optimal counts for
// the four case studies, plus the paper's ~80% average reduction claim.
//
// Paper reference values: Route 1400/271/7, URL 500/110/4,
// IPchains 2100/546/6, DRR 500/60/3.
#include <iostream>

#include "bench_common.h"
#include "support/table.h"

int main() {
  using namespace ddtr;

  std::cout << "== Table 1: Reduction of total simulations needed to "
               "explore the design space ==\n\n";

  support::TextTable table({"Network application", "Exhaustive simulations",
                            "Reduced simulations", "Pareto optimal",
                            "Reduction"});
  double reduction_sum = 0.0;
  for (const core::ExplorationReport& report : bench::all_reports()) {
    const double reduction =
        1.0 - static_cast<double>(report.reduced_simulations()) /
                  static_cast<double>(report.exhaustive_simulations);
    reduction_sum += reduction;
    table.add_row({report.app_name,
                   std::to_string(report.exhaustive_simulations),
                   std::to_string(report.reduced_simulations()),
                   std::to_string(report.pareto_optimal.size()),
                   support::format_percent(reduction)});
  }
  table.print(std::cout);
  std::cout << "\nAverage reduction: "
            << support::format_percent(reduction_sum /
                                       bench::all_reports().size())
            << " (paper reports ~80% on average)\n";
  std::cout << "\nPaper reference rows: Route 1400/271/7, URL 500/110/4, "
               "IPchains 2100/546/6, DRR 500/60/3\n";

  std::cout << "\nSurvivors per application (step 1 -> step 2):\n";
  for (const core::ExplorationReport& report : bench::all_reports()) {
    std::cout << "  " << report.app_name << ": "
              << report.survivors.size() << "/" << report.combination_count
              << " combinations kept; Pareto-optimal set:";
    for (std::size_t idx : report.pareto_optimal) {
      std::cout << ' ' << report.aggregated[idx].combo.label();
    }
    std::cout << '\n';
  }
  return 0;
}
