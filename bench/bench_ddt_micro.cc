// google-benchmark micro suite over the DDT library — the raw operation
// costs behind every trade-off in the paper (supporting material for §3.1,
// including the chunk-capacity ablation called out in DESIGN.md §7).
// Measures both wall time (benchmark's own clock) and charged memory
// accesses per operation (reported as a counter).
#include <benchmark/benchmark.h>

#include <memory>

#include "ddt/chunked_list.h"
#include "ddt/factory.h"

namespace {

using namespace ddtr;

struct Rec {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

constexpr std::size_t kSize = 1024;

void fill(ddt::Container<Rec>& c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) c.push_back({i, i, i});
}

void report_accesses(benchmark::State& state,
                     const prof::MemoryProfile& profile) {
  state.counters["accesses/op"] = benchmark::Counter(
      static_cast<double>(profile.counters().accesses()),
      benchmark::Counter::kAvgIterations);
}

void BM_PushBack(benchmark::State& state, ddt::DdtKind kind) {
  prof::MemoryProfile profile;
  for (auto _ : state) {
    state.PauseTiming();
    auto c = ddt::make_container<Rec>(kind, profile);
    profile.reset();
    state.ResumeTiming();
    fill(*c, kSize);
    benchmark::DoNotOptimize(c->size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSize);
}

void BM_SequentialGet(benchmark::State& state, ddt::DdtKind kind) {
  prof::MemoryProfile profile;
  auto c = ddt::make_container<Rec>(kind, profile);
  fill(*c, kSize);
  profile.reset();
  std::uint64_t iterations = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kSize; ++i) {
      benchmark::DoNotOptimize(c->get(i));
    }
    ++iterations;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(iterations) * kSize);
  state.counters["accesses/item"] = benchmark::Counter(
      static_cast<double>(profile.counters().accesses()) /
      static_cast<double>(iterations * kSize));
}

void BM_RandomGet(benchmark::State& state, ddt::DdtKind kind) {
  prof::MemoryProfile profile;
  auto c = ddt::make_container<Rec>(kind, profile);
  fill(*c, kSize);
  profile.reset();
  std::uint64_t x = 0x2545f4914f6cdd1dULL;
  std::uint64_t iterations = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < 128; ++i) {
      x ^= x >> 12;
      x ^= x << 25;
      x ^= x >> 27;
      benchmark::DoNotOptimize(c->get(x % kSize));
    }
    ++iterations;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(iterations) * 128);
  state.counters["accesses/item"] = benchmark::Counter(
      static_cast<double>(profile.counters().accesses()) /
      static_cast<double>(iterations * 128));
}

void BM_FindThenUpdate(benchmark::State& state, ddt::DdtKind kind) {
  prof::MemoryProfile profile;
  auto c = ddt::make_container<Rec>(kind, profile);
  fill(*c, kSize);
  profile.reset();
  std::uint64_t target = kSize / 2;
  for (auto _ : state) {
    const std::size_t idx = c->find_if(
        [target](const Rec& r) { return r.a == target; });
    Rec r = c->get(idx);
    ++r.b;
    c->set(idx, r);
    benchmark::DoNotOptimize(idx);
  }
  report_accesses(state, profile);
}

void BM_QueueChurn(benchmark::State& state, ddt::DdtKind kind) {
  // The DRR queue pattern: enqueue at the tail, dequeue at the head.
  prof::MemoryProfile profile;
  auto c = ddt::make_container<Rec>(kind, profile);
  fill(*c, 64);
  profile.reset();
  for (auto _ : state) {
    c->push_back({1, 2, 3});
    benchmark::DoNotOptimize(c->get(0));
    c->erase(0);
  }
  report_accesses(state, profile);
}

void BM_MiddleInsertErase(benchmark::State& state, ddt::DdtKind kind) {
  prof::MemoryProfile profile;
  auto c = ddt::make_container<Rec>(kind, profile);
  fill(*c, kSize);
  profile.reset();
  for (auto _ : state) {
    c->insert(kSize / 2, {9, 9, 9});
    c->erase(kSize / 2);
  }
  report_accesses(state, profile);
}

// Chunk-capacity ablation for the unrolled lists (DESIGN.md §7): same
// workload, chunks of 4 / 16 / 64 records.
template <std::size_t Cap>
void BM_ChunkCapacitySequentialScan(benchmark::State& state) {
  prof::MemoryProfile profile;
  ddt::ChunkedListContainer<Rec, false, false, Cap> c(profile);
  for (std::size_t i = 0; i < kSize; ++i) c.push_back({i, i, i});
  const double peak_bytes =
      static_cast<double>(profile.counters().peak_bytes);
  profile.reset();
  std::uint64_t iterations = 0;
  for (auto _ : state) {
    std::uint64_t sum = 0;
    c.for_each([&](std::size_t, const Rec& r) {
      sum += r.a;
      return true;
    });
    benchmark::DoNotOptimize(sum);
    ++iterations;
  }
  state.counters["accesses/scan"] = benchmark::Counter(
      static_cast<double>(profile.counters().accesses()) /
      static_cast<double>(iterations));
  state.counters["footprint_B"] = benchmark::Counter(peak_bytes);
}

template <std::size_t Cap>
void BM_ChunkCapacityRandomGet(benchmark::State& state) {
  prof::MemoryProfile profile;
  ddt::ChunkedListContainer<Rec, false, false, Cap> c(profile);
  for (std::size_t i = 0; i < kSize; ++i) c.push_back({i, i, i});
  profile.reset();
  std::uint64_t x = 88172645463325252ULL;
  std::uint64_t n = 0;
  for (auto _ : state) {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    benchmark::DoNotOptimize(c.get(x % kSize));
    ++n;
  }
  state.counters["accesses/op"] = benchmark::Counter(
      static_cast<double>(profile.counters().accesses()) /
      static_cast<double>(n));
}

void register_all() {
  using Fn = void (*)(benchmark::State&, ddt::DdtKind);
  const std::pair<const char*, Fn> suites[] = {
      {"PushBack", BM_PushBack},
      {"SequentialGet", BM_SequentialGet},
      {"RandomGet", BM_RandomGet},
      {"FindThenUpdate", BM_FindThenUpdate},
      {"QueueChurn", BM_QueueChurn},
      {"MiddleInsertErase", BM_MiddleInsertErase},
  };
  for (const auto& [suite, fn] : suites) {
    for (ddt::DdtKind kind : ddt::kAllDdtKinds) {
      const std::string name =
          std::string(suite) + "/" + std::string(ddt::to_string(kind));
      benchmark::RegisterBenchmark(name.c_str(), fn, kind);
    }
  }
  benchmark::RegisterBenchmark("ChunkCapacity/SequentialScan/4",
                               BM_ChunkCapacitySequentialScan<4>);
  benchmark::RegisterBenchmark("ChunkCapacity/SequentialScan/16",
                               BM_ChunkCapacitySequentialScan<16>);
  benchmark::RegisterBenchmark("ChunkCapacity/SequentialScan/64",
                               BM_ChunkCapacitySequentialScan<64>);
  benchmark::RegisterBenchmark("ChunkCapacity/RandomGet/4",
                               BM_ChunkCapacityRandomGet<4>);
  benchmark::RegisterBenchmark("ChunkCapacity/RandomGet/16",
                               BM_ChunkCapacityRandomGet<16>);
  benchmark::RegisterBenchmark("ChunkCapacity/RandomGet/64",
                               BM_ChunkCapacityRandomGet<64>);
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
