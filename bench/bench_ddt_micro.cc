// Self-timed micro suite over the DDT library — the raw operation costs
// behind every trade-off in the paper (supporting material for §3.1).
// Sweeps every DdtKind under both allocation policies (arena pool vs
// per-node heap) across the access patterns that dominate the four case
// studies, and reports wall time plus charged memory accesses per
// operation. One BenchJson line per (kind, pattern, policy) cell plus a
// summary line with the arena-vs-heap speedup on the insert/remove-heavy
// churn pattern — the number that justifies making the arena the default.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ddt/factory.h"

namespace {

using namespace ddtr;
using Clock = std::chrono::steady_clock;

struct Rec {
  std::uint64_t key = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

std::uint64_t rec_key(const Rec& r) { return r.key; }

// Checksum sink: keeps the optimizer from deleting measured work.
volatile std::uint64_t g_sink = 0;

constexpr std::size_t kFill = 1024;

std::unique_ptr<ddt::Container<Rec>> make(ddt::DdtKind kind,
                                          prof::MemoryProfile& profile,
                                          support::AllocPolicy policy) {
  return ddt::make_container<Rec>(kind, profile, &rec_key, policy);
}

struct Batch {
  std::uint64_t ops = 0;
  std::uint64_t accesses = 0;
};

// The DRR queue / conntrack eviction shape: steady-state insert/remove
// churn. This is the pattern where the allocation policy is the cost —
// every step is one node birth and one node death.
Batch churn_batch(ddt::DdtKind kind, support::AllocPolicy policy) {
  prof::MemoryProfile profile;
  auto c = make(kind, profile, policy);
  for (std::size_t i = 0; i < 64; ++i) c->push_back({i, i, i});
  constexpr std::size_t kSteps = 4096;
  for (std::size_t i = 0; i < kSteps; ++i) {
    c->push_back({i, i, i});
    g_sink = g_sink + c->get(0).a;
    c->erase(0);
  }
  return {kSteps, profile.counters().accesses()};
}

// Bulk build + teardown: the growth-path allocation cost.
Batch fill_clear_batch(ddt::DdtKind kind, support::AllocPolicy policy) {
  prof::MemoryProfile profile;
  auto c = make(kind, profile, policy);
  for (std::size_t round = 0; round < 4; ++round) {
    for (std::size_t i = 0; i < kFill; ++i) c->push_back({i, i, i});
    g_sink = g_sink + c->size();
    c->clear();
  }
  return {4 * kFill, profile.counters().accesses()};
}

// Full sequential visitation — the URL/Route scan loop.
Batch seq_scan_batch(ddt::DdtKind kind, support::AllocPolicy policy) {
  prof::MemoryProfile profile;
  auto c = make(kind, profile, policy);
  for (std::size_t i = 0; i < kFill; ++i) c->push_back({i, i, i});
  profile.reset();
  constexpr std::size_t kRounds = 32;
  for (std::size_t round = 0; round < kRounds; ++round) {
    std::uint64_t sum = 0;
    c->for_each([&](std::size_t, const Rec& r) {
      sum += r.a;
      return true;
    });
    g_sink = g_sink + sum;
  }
  return {kRounds * kFill, profile.counters().accesses()};
}

// Keyed lookup mix (~50% hits) — the ipchains conntrack / DRR flow-table
// classification step, where HASH probes and UNR line-scans.
Batch keyed_find_batch(ddt::DdtKind kind, support::AllocPolicy policy) {
  prof::MemoryProfile profile;
  auto c = make(kind, profile, policy);
  for (std::size_t i = 0; i < kFill; ++i) c->push_back({i, i, i});
  profile.reset();
  constexpr std::size_t kLookups = 2048;
  std::uint64_t x = 0x2545f4914f6cdd1dULL;
  for (std::size_t i = 0; i < kLookups; ++i) {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    g_sink = g_sink + c->find_key(x % (2 * kFill));
  }
  return {kLookups, profile.counters().accesses()};
}

struct Pattern {
  const char* name;
  Batch (*run)(ddt::DdtKind, support::AllocPolicy);
};

constexpr Pattern kPatterns[] = {
    {"queue_churn", &churn_batch},
    {"fill_clear", &fill_clear_batch},
    {"seq_scan", &seq_scan_batch},
    {"keyed_find", &keyed_find_batch},
};

struct CellResult {
  double ns_per_op = 0.0;
  double accesses_per_op = 0.0;
};

CellResult measure(const Pattern& pattern, ddt::DdtKind kind,
                   support::AllocPolicy policy) {
  pattern.run(kind, policy);  // warm-up (page-in, branch predictors)
  std::uint64_t ops = 0;
  std::uint64_t accesses = 0;
  int reps = 0;
  double seconds = 0.0;
  const auto t0 = Clock::now();
  do {
    const Batch batch = pattern.run(kind, policy);
    ops += batch.ops;
    accesses += batch.accesses;
    ++reps;
    seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  } while (seconds < 0.01 || reps < 3);
  return {seconds * 1e9 / static_cast<double>(ops),
          static_cast<double>(accesses) / static_cast<double>(ops)};
}

// Kinds whose storage actually goes through the pool — the arrays ignore
// the policy, so their arena/heap ratio is noise by construction.
bool pool_backed(ddt::DdtKind kind) {
  return kind != ddt::DdtKind::kArray &&
         kind != ddt::DdtKind::kArrayOfPointers;
}

}  // namespace

int main() {
  std::vector<double> churn_ratios;
  for (const ddt::DdtKind kind : ddt::kAllDdtKinds) {
    for (const Pattern& pattern : kPatterns) {
      CellResult arena;
      CellResult heap;
      for (const auto policy :
           {support::AllocPolicy::kArena, support::AllocPolicy::kHeap}) {
        const CellResult result = measure(pattern, kind, policy);
        (policy == support::AllocPolicy::kArena ? arena : heap) = result;
        bench::BenchJson json("ddt_micro");
        json.field("kind", std::string(ddt::to_string(kind)))
            .field("pattern", std::string(pattern.name))
            .field("policy", policy == support::AllocPolicy::kArena
                                 ? std::string("arena")
                                 : std::string("heap"))
            .field("ns_per_op", result.ns_per_op)
            .field("accesses_per_op", result.accesses_per_op);
        json.emit();
      }
      if (pool_backed(kind) && std::string(pattern.name) == "queue_churn") {
        const double ratio = heap.ns_per_op / arena.ns_per_op;
        churn_ratios.push_back(ratio);
        std::cerr << "[ddt_micro] " << ddt::to_string(kind)
                  << " queue_churn arena speedup: " << ratio << "x ("
                  << heap.ns_per_op << " -> " << arena.ns_per_op
                  << " ns/op)\n";
      }
    }
  }

  double log_sum = 0.0;
  double min_ratio = 1e300;
  for (const double ratio : churn_ratios) {
    log_sum += std::log(ratio);
    min_ratio = std::min(min_ratio, ratio);
  }
  const double geomean =
      churn_ratios.empty()
          ? 1.0
          : std::exp(log_sum / static_cast<double>(churn_ratios.size()));
  bench::BenchJson summary("ddt_micro_summary");
  summary.field("pattern", std::string("queue_churn"))
      .field("pool_backed_kinds",
             static_cast<std::uint64_t>(churn_ratios.size()))
      .field("arena_speedup_geomean", geomean)
      .field("arena_speedup_min", min_ratio);
  summary.emit();
  std::cerr << "[ddt_micro] arena vs heap on queue_churn: geomean "
            << geomean << "x, min " << min_ratio << "x over "
            << churn_ratios.size() << " pool-backed kinds\n";
  return 0;
}
