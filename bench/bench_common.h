// Shared plumbing for the table/figure reproduction binaries: one full
// three-step exploration per case study, cached per process, with the
// paper-faithful energy model. Trace lengths scale with DDTR_BENCH_SCALE
// (default 1.0 — the
// simulation *counts* of Table 1 are identical at every scale).
#ifndef DDTR_BENCH_BENCH_COMMON_H_
#define DDTR_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/case_studies.h"
#include "core/explorer.h"

namespace ddtr::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("DDTR_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 1.0;
}

// Simulation lanes used by the shared all_reports() explorations
// (DDTR_BENCH_JOBS; default 1 so paper-reproduction runs stay serial).
// Digits only: atol would turn a typo'd value into 0 = "one lane per
// hardware thread", silently un-serializing every bench wall clock.
inline std::size_t bench_jobs() {
  if (const char* env = std::getenv("DDTR_BENCH_JOBS")) {
    const std::string value(env);
    if (!value.empty() &&
        value.find_first_not_of("0123456789") == std::string::npos) {
      return static_cast<std::size_t>(std::stoul(value));
    }
    std::cerr << "[ddtr] ignoring non-numeric DDTR_BENCH_JOBS='" << value
              << "' (using 1)\n";
  }
  return 1;
}

inline core::CaseStudyOptions bench_options() {
  return core::CaseStudyOptions{}.scaled(bench_scale());
}

// Machine-readable bench results: one JSON object per bench run, written
// to stdout and appended (one object per line) to $DDTR_BENCH_JSON when
// set — the interchange format for BENCH_*.json trajectories.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) {
    os_ << "{\"bench\":\"" << bench_name << "\",\"scale\":" << bench_scale();
  }

  BenchJson& field(const std::string& name, double value) {
    os_ << ",\"" << name << "\":" << value;
    return *this;
  }
  BenchJson& field(const std::string& name, std::uint64_t value) {
    os_ << ",\"" << name << "\":" << value;
    return *this;
  }
  BenchJson& field(const std::string& name, bool value) {
    os_ << ",\"" << name << "\":" << (value ? "true" : "false");
    return *this;
  }
  BenchJson& field(const std::string& name, const std::string& value) {
    os_ << ",\"" << name << "\":\"" << value << '"';
    return *this;
  }
  // Opaque pre-rendered JSON (arrays / nested objects).
  BenchJson& raw(const std::string& name, const std::string& json) {
    os_ << ",\"" << name << "\":" << json;
    return *this;
  }

  std::string str() const { return os_.str() + "}"; }

  // Prints the object and appends it to $DDTR_BENCH_JSON if set.
  void emit() const {
    const std::string line = str();
    std::cout << line << '\n';
    if (const char* path = std::getenv("DDTR_BENCH_JSON")) {
      std::ofstream os(path, std::ios::app);
      if (os) os << line << '\n';
    }
  }

 private:
  std::ostringstream os_;
};

// Runs (and memoizes) the full methodology on all four case studies.
inline const std::vector<core::ExplorationReport>& all_reports() {
  static const std::vector<core::ExplorationReport> reports = [] {
    core::ExplorationOptions options;
    options.jobs = bench_jobs();
    const core::ExplorationEngine engine(core::make_paper_energy_model(),
                                         options);
    std::vector<core::ExplorationReport> out;
    const auto t0 = std::chrono::steady_clock::now();
    for (const core::CaseStudy& study :
         core::make_all_case_studies(bench_options())) {
      std::cerr << "[ddtr] exploring " << study.name << " ("
                << study.scenarios.size() << " configurations)...\n";
      out.push_back(engine.explore(study));
    }
    const auto elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    std::cerr << "[ddtr] total exploration time: " << elapsed << " s (scale "
              << bench_scale() << ")\n";
    return out;
  }();
  return reports;
}

}  // namespace ddtr::bench

#endif  // DDTR_BENCH_BENCH_COMMON_H_
