// Shared plumbing for the table/figure reproduction binaries: one full
// three-step exploration per case study, cached per process, with the
// paper-faithful energy model. Trace lengths scale with DDTR_BENCH_SCALE
// (default 1.0 — the
// simulation *counts* of Table 1 are identical at every scale).
#ifndef DDTR_BENCH_BENCH_COMMON_H_
#define DDTR_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/case_studies.h"
#include "core/explorer.h"

namespace ddtr::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("DDTR_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 1.0;
}

inline core::CaseStudyOptions bench_options() {
  return core::CaseStudyOptions{}.scaled(bench_scale());
}

// Runs (and memoizes) the full methodology on all four case studies.
inline const std::vector<core::ExplorationReport>& all_reports() {
  static const std::vector<core::ExplorationReport> reports = [] {
    const core::ExplorationEngine engine(core::make_paper_energy_model());
    std::vector<core::ExplorationReport> out;
    const auto t0 = std::chrono::steady_clock::now();
    for (const core::CaseStudy& study :
         core::make_all_case_studies(bench_options())) {
      std::cerr << "[ddtr] exploring " << study.name << " ("
                << study.scenarios.size() << " configurations)...\n";
      out.push_back(engine.explore(study));
    }
    const auto elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    std::cerr << "[ddtr] total exploration time: " << elapsed << " s (scale "
              << bench_scale() << ")\n";
    return out;
  }();
  return reports;
}

}  // namespace ddtr::bench

#endif  // DDTR_BENCH_BENCH_COMMON_H_
