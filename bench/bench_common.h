// Shared plumbing for the table/figure reproduction binaries: one full
// three-step exploration per case study, cached per process, with the
// paper-faithful energy model. Trace lengths scale with DDTR_BENCH_SCALE
// (default 1.0 — the
// simulation *counts* of Table 1 are identical at every scale).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <thread>

#include "api/ddtr.h"
#include "ddt/kinds.h"
#include "support/thread_pool.h"

// Build provenance, injected by CMake for bench targets (see the bench
// foreach in CMakeLists.txt). The fallbacks keep bench_common.h usable
// from contexts that do not define them (tests including this header).
#ifndef DDTR_GIT_SHA
#define DDTR_GIT_SHA "unknown"
#endif
#ifndef DDTR_BUILD_FLAGS
#define DDTR_BUILD_FLAGS ""
#endif

namespace ddtr::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("DDTR_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 1.0;
}

// Simulation lanes used by the shared all_reports() explorations
// (DDTR_BENCH_JOBS; default 1 so paper-reproduction runs stay serial).
// Digits only: atol would turn a typo'd value into 0 = "one lane per
// hardware thread", silently un-serializing every bench wall clock.
inline std::size_t bench_jobs() {
  if (const char* env = std::getenv("DDTR_BENCH_JOBS")) {
    const std::string value(env);
    if (!value.empty() &&
        value.find_first_not_of("0123456789") == std::string::npos) {
      return static_cast<std::size_t>(std::stoul(value));
    }
    std::cerr << "[ddtr] ignoring non-numeric DDTR_BENCH_JOBS='" << value
              << "' (using 1)\n";
  }
  return 1;
}

// Persistent simulation-cache directory for the shared explorations
// (DDTR_BENCH_CACHE_DIR; default empty = in-memory caching only). With a
// warm cache a bench's explorations replay previous runs' records and
// execute zero simulations; the emitted reports are byte-identical either
// way, so trajectory JSON stays comparable across cold and warm runs.
inline std::string bench_cache_dir() {
  if (const char* env = std::getenv("DDTR_BENCH_CACHE_DIR")) return env;
  return {};
}

inline core::CaseStudyOptions bench_options() {
  return core::CaseStudyOptions{}.scaled(bench_scale());
}

// Minimal JSON string escaping for the provenance fields: compiler
// version strings are free-form text and must not be able to break the
// object framing.
inline std::string bench_json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
      continue;
    }
    out.push_back(c);
  }
  return out;
}

inline std::string bench_compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

// Machine-readable bench results: one JSON object per bench run, written
// to stdout and appended (one object per line) to $DDTR_BENCH_JSON when
// set — the interchange format for BENCH_*.json trajectories.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) {
    os_ << "{\"bench\":\"" << bench_name << "\",\"scale\":" << bench_scale();
    // Provenance: a trajectory point is only comparable to another one
    // when the commit, compiler, flags and accounting version match —
    // every line records them instead of relying on file names to.
    os_ << ",\"meta\":{\"git_sha\":\"" << bench_json_escape(DDTR_GIT_SHA)
        << "\",\"compiler\":\"" << bench_json_escape(bench_compiler_id())
        << "\",\"flags\":\"" << bench_json_escape(DDTR_BUILD_FLAGS)
        << "\",\"hw_threads\":" << std::thread::hardware_concurrency()
        << ",\"accounting_version\":" << ddt::kDdtAccountingVersion << '}';
  }

  BenchJson& field(const std::string& name, double value) {
    os_ << ",\"" << name << "\":" << value;
    return *this;
  }
  BenchJson& field(const std::string& name, std::uint64_t value) {
    os_ << ",\"" << name << "\":" << value;
    return *this;
  }
  BenchJson& field(const std::string& name, bool value) {
    os_ << ",\"" << name << "\":" << (value ? "true" : "false");
    return *this;
  }
  BenchJson& field(const std::string& name, const std::string& value) {
    os_ << ",\"" << name << "\":\"" << value << '"';
    return *this;
  }
  // Opaque pre-rendered JSON (arrays / nested objects).
  BenchJson& raw(const std::string& name, const std::string& json) {
    os_ << ",\"" << name << "\":" << json;
    return *this;
  }

  std::string str() const { return os_.str() + "}"; }

  // Prints the object and appends it to $DDTR_BENCH_JSON if set.
  void emit() const {
    const std::string line = str();
    std::cout << line << '\n';
    if (const char* path = std::getenv("DDTR_BENCH_JSON")) {
      std::ofstream os(path, std::ios::app);
      if (os) os << line << '\n';
    }
  }

 private:
  std::ostringstream os_;
};

// Runs (and memoizes) the full methodology on every registered workload,
// in registration order (the four built-ins: the paper's Table 1 order).
// The DDTR_BENCH_JOBS lane budget is split two ways: case studies fan
// over the thread pool (whole explorations in parallel), and each
// exploration gets the remaining lanes for its own simulation fan-out.
// Reports land in index-addressed slots, so their order — and, lanes
// being output-invariant, their content — is identical at every budget.
inline const std::vector<core::ExplorationReport>& all_reports() {
  static const std::vector<core::ExplorationReport> reports = [] {
    // t0 covers study construction too (trace generation through the
    // shared net::TraceStore), keeping "total exploration time"
    // comparable with pre-registry runs that timed the same window.
    const auto t0 = std::chrono::steady_clock::now();

    // Studies are built serially up front, so the parallel phase below
    // replays ready-made traces only.
    std::vector<core::CaseStudy> studies;
    for (const std::string& name : api::registry().names()) {
      studies.push_back(api::registry().make_study(name, bench_options()));
    }
    std::cerr << "[ddtr] exploring " << studies.size() << " workloads:";
    for (const core::CaseStudy& study : studies) {
      std::cerr << ' ' << study.name << '(' << study.scenarios.size() << ')';
    }
    std::cerr << "...\n";

    const std::size_t lanes =
        support::ThreadPool::resolve_jobs(bench_jobs());
    const std::size_t across =
        std::max<std::size_t>(1, std::min(lanes, studies.size()));
    const std::size_t within = std::max<std::size_t>(1, lanes / across);

    std::vector<core::ExplorationReport> out(studies.size());
    support::parallel_for(across, studies.size(), [&](std::size_t i) {
      api::Exploration session(std::move(studies[i]));
      out[i] = session.jobs(within).cache_dir(bench_cache_dir()).run();
    });
    const auto elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    std::cerr << "[ddtr] total exploration time: " << elapsed << " s (scale "
              << bench_scale() << ", " << across << " x " << within
              << " lanes)\n";
    return out;
  }();
  return reports;
}

// Adds the simulation-cache accounting of `reports` (in-memory hit/miss
// plus persistent load/store counters, summed) to a bench JSON object, so
// trajectory files record whether a run was cache-warm.
inline BenchJson& add_cache_fields(
    BenchJson& json, const std::vector<core::ExplorationReport>& reports) {
  std::uint64_t hits = 0, misses = 0, loaded = 0, stored = 0;
  for (const core::ExplorationReport& report : reports) {
    hits += report.cache_hits;
    misses += report.cache_misses;
    loaded += report.persistent_loaded;
    stored += report.persistent_stored;
  }
  return json.field("cache_hits", hits)
      .field("cache_misses", misses)
      .field("persistent_loaded", loaded)
      .field("persistent_stored", stored);
}

}  // namespace ddtr::bench

