// Reproduces Figure 4: Route Pareto charts.
//   (a) execution time vs energy, radix-table size 128, one curve per
//       network (7 networks);
//   (b) the same at table size 256, highlighting the designer's pick on
//       the Berry trace (the paper's example: AR+DLL at 6.4 mJ / 0.17 s);
//   (c) memory accesses vs memory footprint for the Berry network.
// Also reproduces the §4 comparison of the all-DLL implementation against
// the best Pareto point (paper: +68.8% footprint, +12% energy, -12.5%
// time). Writes fig4_route_curves.csv.
#include <algorithm>
#include <array>
#include <fstream>
#include <iostream>
#include <set>

#include "bench_common.h"
#include "core/pareto.h"
#include "core/report.h"
#include "ddt/factory.h"
#include "support/table.h"

namespace {

using namespace ddtr;

// One curve per network: the scenario's Pareto-optimal set (4-D dominance,
// as step 3 computes it) projected onto the (mx, my) plane and sorted by
// mx — the non-degenerate analogue of the paper's per-network charts.
void print_curves(const core::ExplorationReport& route,
                  const std::string& config, std::size_t mx, std::size_t my,
                  const char* mx_label, const char* my_label) {
  support::TextTable table({"network", "combination", mx_label, my_label});
  std::set<std::string> networks;
  for (const auto& r : route.step2_records) networks.insert(r.network);
  for (const std::string& network : networks) {
    const auto records =
        route.scenario_records(network + "/" + config);
    std::vector<energy::Metrics> points;
    for (const auto& r : records) points.push_back(r.metrics);
    std::vector<std::size_t> front = core::pareto_filter(points);
    std::sort(front.begin(), front.end(), [&](std::size_t a, std::size_t b) {
      return points[a].as_array()[mx] < points[b].as_array()[mx];
    });
    for (std::size_t idx : front) {
      const auto v = points[idx].as_array();
      table.add_row({network, records[idx].combo.label(),
                     support::format_double(v[mx], 6),
                     support::format_double(v[my], 6)});
    }
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  const core::ExplorationReport& route = bench::all_reports()[0];

  std::cout << "== Figure 4(a): Route, exec time vs energy Pareto curves, "
               "table size 128 (one curve per network) ==\n\n";
  print_curves(route, "table=128", 1, 0, "time_s", "energy_mJ");

  std::cout << "\n== Figure 4(b): table size 256 ==\n\n";
  print_curves(route, "table=256", 1, 0, "time_s", "energy_mJ");

  // The paper's worked example: the designer's pick on the Berry trace at
  // table size 256 (AR + DLL in the paper).
  const auto berry = route.scenario_records("dart-berry/table=256");
  std::vector<energy::Metrics> berry_points;
  for (const auto& r : berry) berry_points.push_back(r.metrics);
  const auto berry_front = core::pareto_filter(berry_points);
  std::cout << "\nDesigner pick on dart-berry/table=256 (most balanced "
               "Pareto point by normalized cost):\n";
  // Knee = lowest sum of metric ratios to the per-metric best.
  std::array<double, energy::kMetricCount> best_v;
  best_v.fill(1e300);
  for (std::size_t idx : berry_front) {
    const auto v = berry_points[idx].as_array();
    for (std::size_t m = 0; m < v.size(); ++m) {
      best_v[m] = std::min(best_v[m], v[m]);
    }
  }
  std::size_t knee = berry_front.front();
  double knee_score = 1e300;
  for (std::size_t idx : berry_front) {
    const auto v = berry_points[idx].as_array();
    double score = 0.0;
    for (std::size_t m = 0; m < v.size(); ++m) {
      score += best_v[m] > 0.0 ? v[m] / best_v[m] : 0.0;
    }
    if (score < knee_score) {
      knee_score = score;
      knee = idx;
    }
  }
  std::cout << "  " << berry[knee].combo.label() << ": energy "
            << support::format_double(berry_points[knee].energy_mj, 3)
            << " mJ, time "
            << support::format_double(berry_points[knee].time_s, 4)
            << " s, footprint "
            << support::format_count(berry_points[knee].footprint_bytes)
            << " B, accesses "
            << support::format_count(berry_points[knee].accesses)
            << "\n  (paper's example point: AR+DLL, 6.4 mJ, 0.17 s, "
               "477,329 B, 4,578,103 accesses)\n";

  std::cout << "\n== Figure 4(c): accesses vs footprint, dart-berry ==\n\n";
  support::TextTable c_table({"combination", "accesses", "footprint_B"});
  {
    std::vector<std::size_t> front = core::pareto_filter(berry_points);
    std::sort(front.begin(), front.end(), [&](std::size_t a, std::size_t b) {
      return berry_points[a].accesses < berry_points[b].accesses;
    });
    for (std::size_t idx : front) {
      c_table.add_row({berry[idx].combo.label(),
                       support::format_count(berry_points[idx].accesses),
                       support::format_count(
                           berry_points[idx].footprint_bytes)});
    }
  }
  c_table.print(std::cout);

  // §4 comparison: all-DLL vs the per-metric best Pareto points on the
  // same scenario (simulated directly; DLL+DLL need not be a survivor).
  const core::CaseStudy study =
      api::registry().make_study("route", bench::bench_options());
  const core::Scenario* berry256 = nullptr;
  for (const auto& s : study.scenarios) {
    if (s.label() == "dart-berry/table=256") berry256 = &s;
  }
  const auto dll = core::simulate(
      *berry256, ddt::DdtCombination({ddt::DdtKind::kDll, ddt::DdtKind::kDll}),
      core::make_paper_energy_model());

  double best_energy = 1e300, best_time = 1e300, best_fp = 1e300;
  for (const auto& m : berry_points) {
    best_energy = std::min(best_energy, m.energy_mj);
    best_time = std::min(best_time, m.time_s);
    best_fp = std::min(best_fp, static_cast<double>(m.footprint_bytes));
  }
  std::cout << "\nAll-DLL vs best Pareto point per metric "
               "(dart-berry/table=256):\n"
            << "  footprint: +"
            << support::format_percent(
                   static_cast<double>(dll.metrics.footprint_bytes) /
                       best_fp - 1.0)
            << " (paper: +68.8%)\n"
            << "  energy:    +"
            << support::format_percent(dll.metrics.energy_mj / best_energy -
                                       1.0)
            << " (paper: +12%)\n"
            << "  time:      "
            << support::format_double(
                   (dll.metrics.time_s / best_time - 1.0) * 100.0, 1)
            << "% vs best (paper: DLL gains 12.5% over the best-energy "
               "point's time)\n";

  // Factor-style gains vs non-Pareto points (paper: accesses up to 8x,
  // footprint 12x, energy 11x, time 2x across the full space).
  const auto& space = route.step1_records;
  double max_e = 0, max_t = 0, max_a = 0, max_f = 0;
  for (const auto& r : space) {
    max_e = std::max(max_e, r.metrics.energy_mj);
    max_t = std::max(max_t, r.metrics.time_s);
    max_a = std::max(max_a, static_cast<double>(r.metrics.accesses));
    max_f = std::max(max_f,
                     static_cast<double>(r.metrics.footprint_bytes));
  }
  double min_e = 1e300, min_t = 1e300, min_a = 1e300, min_f = 1e300;
  for (const auto& r : space) {
    min_e = std::min(min_e, r.metrics.energy_mj);
    min_t = std::min(min_t, r.metrics.time_s);
    min_a = std::min(min_a, static_cast<double>(r.metrics.accesses));
    min_f = std::min(min_f,
                     static_cast<double>(r.metrics.footprint_bytes));
  }
  std::cout << "\nWorst/best factors across the full design space "
               "(paper: energy 11x, time 2x, accesses 8x, footprint 12x):\n"
            << "  energy " << support::format_double(max_e / min_e, 1)
            << "x, time " << support::format_double(max_t / min_t, 1)
            << "x, accesses " << support::format_double(max_a / min_a, 1)
            << "x, footprint " << support::format_double(max_f / min_f, 1)
            << "x\n";

  std::ofstream csv("fig4_route_curves.csv");
  core::write_pareto_csv(csv, route.step2_records, 1, 0);
  std::cout << "\nwrote fig4_route_curves.csv\n";
  return 0;
}
